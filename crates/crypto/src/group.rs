//! The prime-order discrete-log group `G` (quadratic-residue subgroup of
//! `Z_p^*` for the global safe prime `p = 2q + 1`).
//!
//! This group backs the "real" discrete-log cryptography of the paper:
//! Pedersen polynomial commitments (AVSS, Alg 1), Schnorr signatures (the
//! bulletin-PKI signatures used everywhere), and the DLEQ-based VRF (Coin,
//! Alg 4).

use std::fmt;
use std::ops::Mul;

use setupfree_wire::{Decode, Encode, Reader, WireError, Writer};

use crate::hash::hash_fields;
use crate::modarith::{inv_mod, mul_mod, pow_mod};
use crate::params::group_params;
use crate::scalar::Scalar;

/// Serialized length of a group element in bytes.
pub const GROUP_ELEMENT_LEN: usize = 8;

/// An element of the order-`q` subgroup.
///
/// # Example
///
/// ```
/// use setupfree_crypto::group::GroupElement;
/// use setupfree_crypto::scalar::Scalar;
///
/// let g = GroupElement::generator();
/// let a = Scalar::from_u64(12);
/// let b = Scalar::from_u64(30);
/// assert_eq!(g.pow(a).pow(b), g.pow(a * b));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct GroupElement(u64);

impl fmt::Debug for GroupElement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "GroupElement({})", self.0)
    }
}

impl GroupElement {
    /// The group identity element.
    pub fn identity() -> Self {
        GroupElement(1)
    }

    /// The primary generator `g1`.
    pub fn generator() -> Self {
        GroupElement(group_params().g1)
    }

    /// The secondary generator `g2` (independent of `g1`), used as the
    /// blinding base of Pedersen commitments.
    pub fn generator2() -> Self {
        GroupElement(group_params().g2)
    }

    /// Returns `true` for the identity element.
    pub fn is_identity(self) -> bool {
        self.0 == 1
    }

    /// Group exponentiation `self^e`.
    pub fn pow(self, e: Scalar) -> Self {
        GroupElement(pow_mod(self.0, e.to_u64(), group_params().p))
    }

    /// Group inverse.
    pub fn inverse(self) -> Self {
        GroupElement(inv_mod(self.0, group_params().p))
    }

    /// Deterministically hashes arbitrary fields into the group
    /// (hash-to-representative then squaring maps into the QR subgroup).
    pub fn hash_to_group(domain: &str, fields: &[&[u8]]) -> Self {
        let p = group_params().p;
        let mut counter: u64 = 0;
        loop {
            let mut all: Vec<&[u8]> = Vec::with_capacity(fields.len() + 1);
            let ctr_bytes = counter.to_le_bytes();
            all.push(&ctr_bytes);
            all.extend_from_slice(fields);
            let digest = hash_fields(domain, &all);
            let x = u64::from_le_bytes(digest[..8].try_into().expect("8 bytes")) % p;
            if x > 1 {
                let y = mul_mod(x, x, p);
                if y != 1 {
                    return GroupElement(y);
                }
            }
            counter += 1;
        }
    }

    /// `g1^a * g2^b` — the Pedersen commitment base operation, computed
    /// through the fixed-base comb tables of [`crate::multiexp`].
    pub fn commit(a: Scalar, b: Scalar) -> Self {
        crate::multiexp::commit(a, b)
    }

    /// Wraps a raw representative (must already be a subgroup member); only
    /// the exponentiation engine constructs elements this way.
    pub(crate) fn from_raw(v: u64) -> Self {
        GroupElement(v)
    }

    /// The raw representative, for the exponentiation engine.
    pub(crate) fn raw(self) -> u64 {
        self.0
    }

    /// Canonical 8-byte encoding.
    pub fn to_bytes(self) -> [u8; GROUP_ELEMENT_LEN] {
        self.0.to_le_bytes()
    }

    /// Decodes and validates subgroup membership.
    pub fn from_bytes(bytes: [u8; GROUP_ELEMENT_LEN]) -> Option<Self> {
        let gp = group_params();
        let v = u64::from_le_bytes(bytes);
        if v == 0 || v >= gp.p {
            return None;
        }
        if pow_mod(v, gp.q, gp.p) != 1 {
            return None;
        }
        Some(GroupElement(v))
    }
}

impl Mul for GroupElement {
    type Output = GroupElement;
    fn mul(self, rhs: GroupElement) -> GroupElement {
        GroupElement(mul_mod(self.0, rhs.0, group_params().p))
    }
}

impl Encode for GroupElement {
    fn encode(&self, w: &mut Writer) {
        w.write_bytes(&self.to_bytes());
    }
}

impl Decode for GroupElement {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let bytes: [u8; GROUP_ELEMENT_LEN] = <[u8; GROUP_ELEMENT_LEN]>::decode(r)?;
        GroupElement::from_bytes(bytes).ok_or(WireError::InvalidValue { ty: "GroupElement" })
    }
}

/// Multi-exponentiation helper: computes `∏ bases[i]^exps[i]`.
///
/// Delegates to the Pippenger engine in [`crate::multiexp`]; kept here so
/// existing group-level callers keep a single import.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn multi_exp(bases: &[GroupElement], exps: &[Scalar]) -> GroupElement {
    crate::multiexp::multi_exp(bases, exps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn arb_scalar() -> impl Strategy<Value = Scalar> {
        any::<u64>().prop_map(Scalar::from_u64)
    }

    #[test]
    fn generator_has_order_q() {
        let g = GroupElement::generator();
        assert_eq!(g.pow(Scalar::zero()), GroupElement::identity());
        assert!(!g.is_identity());
        // g^q = identity is implied by membership validation; check explicitly
        // via pow with exponent q represented as zero scalar (q ≡ 0 mod q).
        assert_eq!(g.pow(Scalar::from_u64(0)), GroupElement::identity());
    }

    #[test]
    fn exponent_laws() {
        let g = GroupElement::generator();
        let a = Scalar::from_u64(123);
        let b = Scalar::from_u64(456);
        assert_eq!(g.pow(a) * g.pow(b), g.pow(a + b));
        assert_eq!(g.pow(a).pow(b), g.pow(a * b));
        assert_eq!(g.pow(a) * g.pow(a).inverse(), GroupElement::identity());
    }

    #[test]
    fn commit_is_binding_on_different_openings() {
        let c1 = GroupElement::commit(Scalar::from_u64(1), Scalar::from_u64(2));
        let c2 = GroupElement::commit(Scalar::from_u64(2), Scalar::from_u64(2));
        assert_ne!(c1, c2);
    }

    #[test]
    fn hash_to_group_lands_in_subgroup() {
        for i in 0..10u64 {
            let h = GroupElement::hash_to_group("test", &[&i.to_le_bytes()]);
            assert!(GroupElement::from_bytes(h.to_bytes()).is_some());
        }
    }

    #[test]
    fn encoding_rejects_non_members() {
        // 0 and p are invalid representatives.
        assert!(GroupElement::from_bytes(0u64.to_le_bytes()).is_none());
        let p = crate::params::group_params().p;
        assert!(GroupElement::from_bytes(p.to_le_bytes()).is_none());
        // A quadratic non-residue must be rejected.  g^x for any x is a QR, so
        // search for a small non-residue directly.
        let gp = crate::params::group_params();
        let mut nr = None;
        for v in 2u64..200 {
            if pow_mod(v, gp.q, gp.p) != 1 {
                nr = Some(v);
                break;
            }
        }
        let nr = nr.expect("a small non-residue exists");
        assert!(GroupElement::from_bytes(nr.to_le_bytes()).is_none());
    }

    #[test]
    fn wire_roundtrip() {
        let g = GroupElement::generator().pow(Scalar::from_u64(777));
        let bytes = setupfree_wire::to_bytes(&g);
        assert_eq!(bytes.len(), GROUP_ELEMENT_LEN);
        assert_eq!(setupfree_wire::from_bytes::<GroupElement>(&bytes).unwrap(), g);
    }

    #[test]
    fn multi_exp_matches_naive() {
        let g = GroupElement::generator();
        let h = GroupElement::generator2();
        let bases = vec![g, h, g * h];
        let exps = vec![Scalar::from_u64(3), Scalar::from_u64(5), Scalar::from_u64(7)];
        let expected = g.pow(exps[0]) * h.pow(exps[1]) * (g * h).pow(exps[2]);
        assert_eq!(multi_exp(&bases, &exps), expected);
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn multi_exp_length_mismatch_panics() {
        multi_exp(&[GroupElement::generator()], &[]);
    }

    proptest! {
        #[test]
        fn prop_homomorphic(a in arb_scalar(), b in arb_scalar()) {
            let g = GroupElement::generator();
            prop_assert_eq!(g.pow(a) * g.pow(b), g.pow(a + b));
        }

        #[test]
        fn prop_roundtrip(a in arb_scalar()) {
            let x = GroupElement::generator().pow(a);
            prop_assert_eq!(GroupElement::from_bytes(x.to_bytes()), Some(x));
        }

        #[test]
        fn prop_pow_composes_multiplicatively(a in arb_scalar(), b in arb_scalar()) {
            // (g^a)^b = g^(a·b): the law Pedersen share verification and the
            // VRF both rely on.
            let g = GroupElement::generator();
            prop_assert_eq!(g.pow(a).pow(b), g.pow(a * b));
        }

        #[test]
        fn prop_identity_and_inverse_laws(a in arb_scalar()) {
            let x = GroupElement::generator().pow(a);
            prop_assert_eq!(x * GroupElement::identity(), x);
            prop_assert_eq!(x * x.inverse(), GroupElement::identity());
            prop_assert_eq!(x.inverse().inverse(), x);
        }

        #[test]
        fn prop_multi_exp_matches_naive(a in arb_scalar(), b in arb_scalar(), c in arb_scalar()) {
            let bases = [
                GroupElement::generator(),
                GroupElement::generator2(),
                GroupElement::hash_to_group("prop", &[b"base"]),
            ];
            let exps = [a, b, c];
            let naive = bases
                .iter()
                .zip(exps.iter())
                .fold(GroupElement::identity(), |acc, (base, e)| acc * base.pow(*e));
            prop_assert_eq!(multi_exp(&bases, &exps), naive);
        }
    }
}
