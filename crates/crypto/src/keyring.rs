//! The bulletin PKI: per-party secret keys and the public keyring every
//! party can read (§3, "Bulletin PKI").
//!
//! Key *generation* is local to each party; the keyring only aggregates the
//! registered public keys.  The [`generate_pki`] helper plays the role of the
//! registration phase for tests, examples and benchmarks; adversarial
//! ("maliciously generated") keys can be injected by constructing
//! [`PartySecrets`] from chosen secrets and registering their public halves.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::pvss::{PvssDecryptionKey, PvssEncryptionKey};
use crate::scalar::Scalar;
use crate::sig::{SigningKey, VerifyingKey};
use crate::vrf::{VrfPublicKey, VrfSecretKey};

/// All secret key material held by one party.
#[derive(Debug, Clone)]
pub struct PartySecrets {
    /// This party's index in `[0, n)`.
    pub index: usize,
    /// Signing key (bulletin-PKI signature key).
    pub sig: SigningKey,
    /// VRF secret key.
    pub vrf: VrfSecretKey,
    /// PVSS decryption key.
    pub pvss_dk: PvssDecryptionKey,
}

impl PartySecrets {
    /// Generates fresh key material for party `index`.
    pub fn generate<R: Rng + ?Sized>(index: usize, rng: &mut R) -> Self {
        let (pvss_dk, _) = PvssDecryptionKey::generate(rng);
        PartySecrets {
            index,
            sig: SigningKey::generate(rng),
            vrf: VrfSecretKey::generate(rng),
            pvss_dk,
        }
    }

    /// The public keys this party registers at the PKI.
    pub fn public(&self) -> PartyPublic {
        PartyPublic {
            sig: self.sig.verifying_key(),
            vrf: self.vrf.public_key(),
            pvss_ek: PvssEncryptionKey::from_decryption_key(&self.pvss_dk),
        }
    }
}

impl PvssEncryptionKey {
    /// Derives the encryption key corresponding to a decryption key.
    pub fn from_decryption_key(dk: &PvssDecryptionKey) -> Self {
        PvssEncryptionKey(crate::pairing::G2::generator().pow(dk.0))
    }
}

/// The public keys registered by one party.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartyPublic {
    /// Signature verification key.
    pub sig: VerifyingKey,
    /// VRF public key.
    pub vrf: VrfPublicKey,
    /// PVSS encryption key.
    pub pvss_ek: PvssEncryptionKey,
}

/// The bulletin PKI view shared by all parties: `n`, `f`, and every party's
/// registered public keys.
#[derive(Debug, Clone)]
pub struct Keyring {
    n: usize,
    f: usize,
    parties: Vec<PartyPublic>,
    /// Signature keys in party order, cached contiguously for the aggregate
    /// certificate paths that need a `&[VerifyingKey]` on every verification.
    sig_keys: Vec<VerifyingKey>,
}

impl Keyring {
    /// Builds a keyring from registered public keys, with `f = ⌊(n−1)/3⌋`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than four parties are registered (the smallest system
    /// that tolerates one fault).
    pub fn new(parties: Vec<PartyPublic>) -> Self {
        let n = parties.len();
        assert!(n >= 4, "at least 4 parties are required (n ≥ 3f + 1 with f ≥ 1)");
        let sig_keys = parties.iter().map(|p| p.sig).collect();
        Keyring { n, f: (n - 1) / 3, parties, sig_keys }
    }

    /// Number of parties.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Fault threshold `f = ⌊(n−1)/3⌋`.
    pub fn f(&self) -> usize {
        self.f
    }

    /// Quorum size `n − f`.
    pub fn quorum(&self) -> usize {
        self.n - self.f
    }

    /// The registered public keys of party `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i ≥ n`.
    pub fn party(&self, i: usize) -> &PartyPublic {
        &self.parties[i]
    }

    /// Signature verification key of party `i`.
    pub fn sig_key(&self, i: usize) -> &VerifyingKey {
        &self.parties[i].sig
    }

    /// VRF public key of party `i`.
    pub fn vrf_key(&self, i: usize) -> &VrfPublicKey {
        &self.parties[i].vrf
    }

    /// All PVSS encryption keys, in party order.
    pub fn pvss_eks(&self) -> Vec<PvssEncryptionKey> {
        self.parties.iter().map(|p| p.pvss_ek).collect()
    }

    /// All signature verification keys, in party order.
    pub fn sig_keys(&self) -> Vec<VerifyingKey> {
        self.sig_keys.clone()
    }

    /// The cached contiguous slice of signature verification keys, in party
    /// order — the registry the aggregate certificate paths verify against.
    pub fn sig_key_slice(&self) -> &[VerifyingKey] {
        &self.sig_keys
    }
}

/// Generates a complete PKI for `n` parties from a seed: returns the shared
/// keyring and each party's secrets.  Used by tests, examples and benchmarks
/// as the "registration phase".
pub fn generate_pki(n: usize, seed: u64) -> (Keyring, Vec<PartySecrets>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let secrets: Vec<PartySecrets> = (0..n).map(|i| PartySecrets::generate(i, &mut rng)).collect();
    let keyring = Keyring::new(secrets.iter().map(PartySecrets::public).collect());
    (keyring, secrets)
}

/// Generates a PKI in which the parties listed in `malicious` register keys
/// derived from adversarially chosen (non-uniform) secrets — modelling the
/// "malicious key generation" threat of §3.
pub fn generate_pki_with_malicious(n: usize, seed: u64, malicious: &[usize]) -> (Keyring, Vec<PartySecrets>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut secrets: Vec<PartySecrets> = (0..n).map(|i| PartySecrets::generate(i, &mut rng)).collect();
    for &m in malicious {
        // The adversary picks tiny, structured secrets instead of uniform ones.
        let chosen = Scalar::from_u64(m as u64 + 1);
        secrets[m] = PartySecrets {
            index: m,
            sig: SigningKey::from_secret(chosen),
            vrf: VrfSecretKey::from_secret(chosen),
            pvss_dk: secrets[m].pvss_dk,
        };
    }
    let keyring = Keyring::new(secrets.iter().map(PartySecrets::public).collect());
    (keyring, secrets)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pki_shapes() {
        let (keyring, secrets) = generate_pki(7, 1);
        assert_eq!(keyring.n(), 7);
        assert_eq!(keyring.f(), 2);
        assert_eq!(keyring.quorum(), 5);
        assert_eq!(secrets.len(), 7);
        for (i, s) in secrets.iter().enumerate() {
            assert_eq!(s.index, i);
            assert_eq!(keyring.party(i).sig, s.sig.verifying_key());
            assert_eq!(keyring.party(i).vrf, s.vrf.public_key());
        }
    }

    #[test]
    fn pki_is_deterministic_in_seed() {
        let (k1, _) = generate_pki(4, 42);
        let (k2, _) = generate_pki(4, 42);
        let (k3, _) = generate_pki(4, 43);
        assert_eq!(k1.party(0), k2.party(0));
        assert_ne!(k1.party(0), k3.party(0));
    }

    #[test]
    fn signatures_from_generated_keys_verify() {
        let (keyring, secrets) = generate_pki(4, 2);
        let sig = secrets[2].sig.sign(b"id", b"msg");
        assert!(keyring.sig_key(2).verify(b"id", b"msg", &sig));
        assert!(!keyring.sig_key(1).verify(b"id", b"msg", &sig));
    }

    #[test]
    fn malicious_keys_still_form_valid_keyring() {
        let (keyring, secrets) = generate_pki_with_malicious(7, 3, &[0, 5]);
        // Malicious parties can still sign/verify under their chosen keys.
        let sig = secrets[0].sig.sign(b"id", b"msg");
        assert!(keyring.sig_key(0).verify(b"id", b"msg", &sig));
        // And their VRF remains unique/verifiable.
        let (out, proof) = secrets[5].vrf.eval(b"id", b"seed");
        assert!(keyring.vrf_key(5).verify(b"id", b"seed", &out, &proof));
    }

    #[test]
    #[should_panic(expected = "at least 4 parties")]
    fn too_few_parties_panics() {
        let (_, secrets) = generate_pki(4, 4);
        Keyring::new(secrets.iter().take(2).map(PartySecrets::public).collect());
    }

    #[test]
    fn fault_thresholds_follow_formula() {
        for (n, f) in [(4, 1), (7, 2), (10, 3), (13, 4), (16, 5), (31, 10)] {
            let (keyring, _) = generate_pki(n, 7);
            assert_eq!(keyring.f(), f, "n = {n}");
            assert!(keyring.n() > 3 * keyring.f());
        }
    }
}
