//! Aggregatable public verifiable secret sharing (Gurkan et al.,
//! EUROCRYPT '21), following the algorithm suite in the paper's Appendix B
//! (Alg 6): `Deal`, `VrfyScript`, `AggScripts`, `GetShare`, `VrfyShare`,
//! `AggShares`, `VrfySecret` and `Weights`, with per-contributor weight tags
//! authenticated by signatures of knowledge.
//!
//! The scheme is instantiated over the simulated bilinear group
//! ([`crate::pairing`]); see DESIGN.md §2 for the substitution rationale.
//! Every verification equation from Alg 6 is implemented verbatim:
//!
//! * low-degree consistency of the evaluation vector (`∏ A_j^{ℓ_j(α)} = ∏ F_k^{α^k}`),
//! * `e(F_0, û_1) = e(g_1, û_2)`,
//! * `e(g_1, Ŷ_j) = e(A_j, ek_j)` for every share,
//! * signature-of-knowledge checks for every non-zero weight,
//! * `∏ C_i^{w_i} = F_0`.

use rand::Rng;
use setupfree_wire::{Decode, Encode, Reader, WireError, Writer};

use crate::hash::hash_fields;
use crate::multiexp::powers_of;
use crate::pairing::{pairing, G1, G2};
use crate::poly::{lagrange_table, share_point_table, Polynomial};
use crate::scalar::Scalar;
use crate::sig::{Signature, SigningKey, VerifyingKey};

/// Parameters of a `(n, degree)` aggregatable PVSS: `n` receivers, secret
/// polynomial of degree `degree`, reconstruction from any `degree + 1`
/// shares.  The Seeding protocol uses `degree = 2f` (secrecy threshold
/// `2f + 1`, per Appendix B.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PvssParams {
    /// Number of receiving parties.
    pub n: usize,
    /// Degree of the shared polynomial.
    pub degree: usize,
}

impl PvssParams {
    /// Creates parameters, validating that reconstruction is possible.
    ///
    /// # Panics
    ///
    /// Panics if `degree + 1 > n`.
    pub fn new(n: usize, degree: usize) -> Self {
        assert!(degree < n, "cannot reconstruct a degree-{degree} polynomial with only {n} shares");
        PvssParams { n, degree }
    }

    /// Number of shares required to reconstruct.
    pub fn reconstruction_threshold(&self) -> usize {
        self.degree + 1
    }
}

/// A PVSS decryption key (held privately by each receiver).
#[derive(Debug, Clone, Copy)]
pub struct PvssDecryptionKey(pub(crate) Scalar);

/// A PVSS encryption key (registered at the bulletin PKI): `ek_i = ĥ_1^{dk_i}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PvssEncryptionKey(pub(crate) G2);

impl PvssDecryptionKey {
    /// Generates a fresh decryption/encryption key pair.
    pub fn generate<R: Rng + ?Sized>(rng: &mut R) -> (Self, PvssEncryptionKey) {
        let dk = Scalar::random_nonzero(rng);
        (PvssDecryptionKey(dk), PvssEncryptionKey(G2::generator().pow(dk)))
    }

    /// Secret verifier-side entropy derived from the decryption key, for the
    /// random challenges of [`verify_single_dealer_batch`].  Never leaves the
    /// party, so an adversary fixing transcripts cannot predict the batch
    /// weights derived from it.
    pub fn batch_entropy(&self) -> [u8; 32] {
        hash_fields("setupfree/pvss/batch-entropy", &[&self.0.to_bytes()])
    }
}

/// The second G2 generator `û_1` (independent of `ĥ_1`), derived by hashing.
fn u1() -> G2 {
    G2::generator_pow(Scalar::from_hash("setupfree/pvss/u1", &[b"generator"]))
}

/// A decrypted share `ĥ_1^{F(ω_i)}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PvssShare(pub(crate) G2);

/// The reconstructed committed secret `ĥ_1^{F(0)}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PvssSecret(pub(crate) G2);

impl PvssSecret {
    /// Canonical byte representation, used to derive the λ-bit seed output by
    /// the Seeding protocol.
    pub fn to_seed_bytes(&self) -> [u8; 32] {
        hash_fields("setupfree/pvss/seed", &[&setupfree_wire::to_bytes(&self.0)])
    }
}

/// A PVSS transcript ("script" in the paper): the polynomial commitment, the
/// encrypted shares, and the aggregatable weight tags.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PvssScript {
    /// `F_0 … F_t`: commitments to the polynomial coefficients (`g_1^{a_k}`).
    f_coeffs: Vec<G1>,
    /// `û_2 = û_1^{a_0}`.
    u2: G2,
    /// `A_1 … A_n`: commitments to the evaluations (`g_1^{F(ω_j)}`).
    a_evals: Vec<G1>,
    /// `Ŷ_1 … Ŷ_n`: encrypted shares (`ek_j^{F(ω_j)}`).
    y_encs: Vec<G2>,
    /// `C_i`: per-contributor commitments to their constant term.
    c_comms: Vec<Option<G1>>,
    /// Contribution weights `w`.
    weights: Vec<u32>,
    /// Signatures of knowledge binding each contribution to its author.
    soks: Vec<Option<Signature>>,
}

/// Error returned by the fallible PVSS operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PvssError {
    /// The two scripts being aggregated have inconsistent dimensions.
    DimensionMismatch,
    /// Aggregation found two different commitments claimed by the same party.
    ConflictingContribution {
        /// The party whose contributions conflict.
        party: usize,
    },
    /// Not enough valid shares to reconstruct.
    NotEnoughShares {
        /// Shares provided.
        got: usize,
        /// Shares required.
        need: usize,
    },
    /// Duplicate share indices were provided to reconstruction.
    DuplicateShare {
        /// The duplicated index.
        index: usize,
    },
}

impl std::fmt::Display for PvssError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PvssError::DimensionMismatch => write!(f, "pvss scripts have mismatched dimensions"),
            PvssError::ConflictingContribution { party } => {
                write!(f, "conflicting contribution for party {party}")
            }
            PvssError::NotEnoughShares { got, need } => {
                write!(f, "not enough shares to reconstruct: got {got}, need {need}")
            }
            PvssError::DuplicateShare { index } => write!(f, "duplicate share for index {index}"),
        }
    }
}

impl std::error::Error for PvssError {}

impl PvssScript {
    /// `Deal(ek, sk_i, s)`: produces a fresh single-contributor script for
    /// dealer `dealer` (0-based) sharing secret `secret`.
    pub fn deal<R: Rng + ?Sized>(
        params: &PvssParams,
        eks: &[PvssEncryptionKey],
        signing_key: &SigningKey,
        dealer: usize,
        secret: Scalar,
        rng: &mut R,
    ) -> Self {
        assert_eq!(eks.len(), params.n, "one encryption key per receiver is required");
        assert!(dealer < params.n, "dealer index out of range");
        let poly = Polynomial::random_with_constant(secret, params.degree, rng);
        let f_coeffs: Vec<G1> = poly.coeffs().iter().map(|c| G1::generator_pow(*c)).collect();
        let u2 = u1().pow(secret);
        let a_evals: Vec<G1> =
            (1..=params.n).map(|j| G1::generator_pow(poly.eval_at_index(j))).collect();
        let y_encs: Vec<G2> =
            (1..=params.n).map(|j| eks[j - 1].0.pow(poly.eval_at_index(j))).collect();
        let mut c_comms = vec![None; params.n];
        let mut weights = vec![0u32; params.n];
        let mut soks = vec![None; params.n];
        let c_i = G1::generator_pow(secret);
        c_comms[dealer] = Some(c_i);
        weights[dealer] = 1;
        soks[dealer] = Some(sok_sign(signing_key, dealer, &c_i));
        PvssScript { f_coeffs, u2, a_evals, y_encs, c_comms, weights, soks }
    }

    /// `Weights(pvss)`: the per-party contribution weight vector.
    pub fn weights(&self) -> &[u32] {
        &self.weights
    }

    /// Number of distinct contributors (non-zero weights).
    pub fn contributor_count(&self) -> usize {
        self.weights.iter().filter(|w| **w > 0).count()
    }

    /// `F_0`, the commitment to the aggregated secret.
    pub fn public_commitment(&self) -> G1 {
        self.f_coeffs[0]
    }

    /// `VrfyScript(ek, vk, pvss)`: full public verification of the script.
    pub fn verify(
        &self,
        params: &PvssParams,
        eks: &[PvssEncryptionKey],
        vks: &[VerifyingKey],
    ) -> bool {
        if self.f_coeffs.len() != params.degree + 1
            || self.a_evals.len() != params.n
            || self.y_encs.len() != params.n
            || self.c_comms.len() != params.n
            || self.weights.len() != params.n
            || self.soks.len() != params.n
            || eks.len() != params.n
            || vks.len() != params.n
        {
            return false;
        }
        // (1) Low-degree consistency at a Fiat–Shamir challenge point α:
        //     ∏_j A_j^{ℓ_j(α)} must equal ∏_k F_k^{α^k}.  The coefficient
        //     vector comes from the cached share-point Lagrange table (O(n)
        //     after the first use) and both products are single multi-exps.
        let alpha = self.challenge_point();
        let coeffs = share_point_table(params.n).coefficients_at(alpha);
        let lhs = G1::multi_exp(&self.a_evals, &coeffs);
        let rhs = G1::multi_exp(&self.f_coeffs, &powers_of(alpha, self.f_coeffs.len()));
        if lhs != rhs {
            return false;
        }
        // (2) e(F_0, û_1) = e(g_1, û_2).
        if pairing(self.f_coeffs[0], u1()) != pairing(G1::generator(), self.u2) {
            return false;
        }
        // (3) e(g_1, Ŷ_j) = e(A_j, ek_j) for every receiver.
        for ((y_j, a_j), ek_j) in self.y_encs.iter().zip(&self.a_evals).zip(eks) {
            if pairing(G1::generator(), *y_j) != pairing(*a_j, ek_j.0) {
                return false;
            }
        }
        // (4) Signature-of-knowledge check for every claimed contributor.
        for (i, vk_i) in vks.iter().enumerate() {
            if self.weights[i] != 0 {
                match (&self.c_comms[i], &self.soks[i]) {
                    (Some(c_i), Some(sok)) => {
                        if !sok_verify(vk_i, i, c_i, sok) {
                            return false;
                        }
                    }
                    _ => return false,
                }
            }
        }
        // (5) ∏ C_i^{w_i} = F_0.
        let mut acc = G1::identity();
        for i in 0..params.n {
            if self.weights[i] != 0 {
                let c_i = match self.c_comms[i] {
                    Some(c) => c,
                    None => return false,
                };
                acc = acc * c_i.pow(Scalar::from_u64(u64::from(self.weights[i])));
            }
        }
        acc == self.f_coeffs[0]
    }

    /// Verifies a fresh single-dealer script: in addition to [`Self::verify`],
    /// requires weight exactly one at `dealer` and zero elsewhere (the check
    /// performed by the Seeding leader in Alg 7 line 19).
    pub fn verify_single_dealer(
        &self,
        params: &PvssParams,
        eks: &[PvssEncryptionKey],
        vks: &[VerifyingKey],
        dealer: usize,
    ) -> bool {
        if dealer >= params.n {
            return false;
        }
        let weights_ok = self
            .weights
            .iter()
            .enumerate()
            .all(|(i, w)| if i == dealer { *w == 1 } else { *w == 0 });
        weights_ok && self.verify(params, eks, vks)
    }

    /// `AggScripts(pvss1, pvss2)`: aggregates two scripts.
    ///
    /// # Errors
    ///
    /// Returns [`PvssError`] if the scripts have mismatched dimensions or
    /// conflicting per-party contributions.
    pub fn aggregate(&self, other: &PvssScript) -> Result<PvssScript, PvssError> {
        if self.f_coeffs.len() != other.f_coeffs.len()
            || self.a_evals.len() != other.a_evals.len()
            || self.y_encs.len() != other.y_encs.len()
        {
            return Err(PvssError::DimensionMismatch);
        }
        let f_coeffs =
            self.f_coeffs.iter().zip(other.f_coeffs.iter()).map(|(a, b)| *a * *b).collect();
        let u2 = self.u2 * other.u2;
        let a_evals = self.a_evals.iter().zip(other.a_evals.iter()).map(|(a, b)| *a * *b).collect();
        let y_encs = self.y_encs.iter().zip(other.y_encs.iter()).map(|(a, b)| *a * *b).collect();
        let n = self.weights.len();
        let mut c_comms = Vec::with_capacity(n);
        let mut weights = Vec::with_capacity(n);
        let mut soks = Vec::with_capacity(n);
        for i in 0..n {
            weights.push(self.weights[i] + other.weights[i]);
            let c = match (self.c_comms[i], other.c_comms[i]) {
                (Some(a), Some(b)) => {
                    if a != b {
                        return Err(PvssError::ConflictingContribution { party: i });
                    }
                    Some(a)
                }
                (Some(a), None) => Some(a),
                (None, b) => b,
            };
            c_comms.push(c);
            soks.push(self.soks[i].or(other.soks[i]));
        }
        Ok(PvssScript { f_coeffs, u2, a_evals, y_encs, c_comms, weights, soks })
    }

    /// Aggregates a non-empty collection of scripts.
    ///
    /// # Errors
    ///
    /// Propagates aggregation errors; errors if `scripts` is empty.
    pub fn aggregate_all(scripts: &[PvssScript]) -> Result<PvssScript, PvssError> {
        let (first, rest) = scripts.split_first().ok_or(PvssError::DimensionMismatch)?;
        let mut acc = first.clone();
        for s in rest {
            acc = acc.aggregate(s)?;
        }
        Ok(acc)
    }

    /// `GetShare(dk_i, pvss)`: decrypts party `i`'s share `ĥ_1^{F(ω_i)}`.
    pub fn decrypt_share(&self, index: usize, dk: &PvssDecryptionKey) -> PvssShare {
        PvssShare(self.y_encs[index].pow(dk.0.invert()))
    }

    /// `VrfyShare(j, sh_j, pvss)`: checks `e(A_j, ĥ_1) = e(g_1, sh_j)`.
    pub fn verify_share(&self, index: usize, share: &PvssShare) -> bool {
        if index >= self.a_evals.len() {
            return false;
        }
        pairing(self.a_evals[index], G2::generator()) == pairing(G1::generator(), share.0)
    }


    /// `AggShares({(j, sh_j)})`: reconstructs the committed secret from
    /// `degree + 1` or more valid shares (Lagrange interpolation in the
    /// exponent).
    ///
    /// # Errors
    ///
    /// Returns [`PvssError`] on insufficient or duplicate shares.
    pub fn reconstruct(
        &self,
        params: &PvssParams,
        shares: &[(usize, PvssShare)],
    ) -> Result<PvssSecret, PvssError> {
        let need = params.reconstruction_threshold();
        let mut seen = std::collections::BTreeSet::new();
        let mut valid: Vec<(usize, PvssShare)> = Vec::new();
        for (idx, share) in shares {
            if !seen.insert(*idx) {
                return Err(PvssError::DuplicateShare { index: *idx });
            }
            if self.verify_share(*idx, share) {
                valid.push((*idx, *share));
            }
        }
        if valid.len() < need {
            return Err(PvssError::NotEnoughShares { got: valid.len(), need });
        }
        let subset = &valid[..need];
        let xs: Vec<Scalar> = subset.iter().map(|(i, _)| Scalar::from_u64(*i as u64 + 1)).collect();
        let coeffs = lagrange_table(&xs).coefficients_at(Scalar::zero());
        let shares_g2: Vec<G2> = subset.iter().map(|(_, share)| share.0).collect();
        Ok(PvssSecret(G2::multi_exp(&shares_g2, &coeffs)))
    }

    /// `VrfySecret(s, pvss)`: checks `e(F_0, ĥ_1) = e(g_1, s)`.
    pub fn verify_secret(&self, secret: &PvssSecret) -> bool {
        pairing(self.f_coeffs[0], G2::generator()) == pairing(G1::generator(), secret.0)
    }

    /// Deterministic Fiat–Shamir challenge for the low-degree test.
    fn challenge_point(&self) -> Scalar {
        let encoded = setupfree_wire::to_bytes(&(self.f_coeffs.clone(), self.a_evals.clone()));
        Scalar::from_hash("setupfree/pvss/alpha", &[&encoded])
    }

    /// Dimension and weight-vector checks for a fresh single-dealer script —
    /// the non-algebraic screening a batched verification still performs per
    /// transcript.
    fn single_dealer_shape_ok(&self, params: &PvssParams, dealer: usize) -> bool {
        dealer < params.n
            && self.f_coeffs.len() == params.degree + 1
            && self.a_evals.len() == params.n
            && self.y_encs.len() == params.n
            && self.c_comms.len() == params.n
            && self.weights.len() == params.n
            && self.soks.len() == params.n
            && self.c_comms[dealer].is_some()
            && self
                .weights
                .iter()
                .enumerate()
                .all(|(i, w)| if i == dealer { *w == 1 } else { *w == 0 })
    }

    /// The dealer's signature-of-knowledge check (signatures cannot be
    /// folded into a random linear combination, so batching keeps them
    /// per-transcript).
    fn dealer_sok_ok(&self, vks: &[VerifyingKey], dealer: usize) -> bool {
        match (&self.c_comms[dealer], &self.soks[dealer]) {
            (Some(c_i), Some(sok)) => sok_verify(&vks[dealer], dealer, c_i, sok),
            _ => false,
        }
    }
}

/// Verifies `n` fresh single-dealer PVSS transcripts — the exact workload a
/// Seeding leader faces when aggregating an AVSS/coin setup — with one
/// random-linear-combination check instead of `n` independent
/// [`PvssScript::verify_single_dealer`] calls.
///
/// **Randomness.** This is *local* verification (the verdict is never sent
/// as a proof), so instead of deriving per-transcript Fiat–Shamir challenges
/// — which would mean hashing every transcript and is exactly the cost this
/// function exists to remove — the batch draws its randomness from
/// `entropy`, a secret only the verifier knows (e.g.
/// [`PvssDecryptionKey::batch_entropy`]).  A secret scalar `ρ` and challenge
/// point `α` are derived from `entropy` and the batch's dealer set; the
/// weights are the powers `ρ⁰, ρ¹, …` (Bellare–Garay–Rabin-style screening),
/// so a forged batch passes only if a nonzero polynomial of degree `< n`
/// vanishes at the secret `ρ` — probability `< n/q`.  An adversary who fixed
/// the transcripts cannot bias this because it never sees `ρ` or `α`.
///
/// With weights `ρⁱ`, the per-script algebraic equations collapse into:
///
/// * one combined low-degree identity at the shared secret point `α`:
///   `∏_j (Σᵢ ρⁱ·A_{i,j})^{ℓ_j(α)} = ∏_k (Σᵢ ρⁱ·F_{i,k})^{α^k}`
///   (written additively in the exponents) — and since `α` is verifier-chosen
///   the per-transcript challenge hashes disappear entirely,
/// * one pairing equation `e(∏_i F_{i,0}^{ρⁱ}, û_1) = e(g_1, ∏_i û_{2,i}^{ρⁱ})`
///   instead of one per transcript,
/// * two pairings **per receiver** `e(∏_i A_{i,j}^{ρⁱ}, ek_j) =
///   e(g_1, ∏_i Ŷ_{i,j}^{ρⁱ})` instead of two per receiver *per transcript*
///   (`2n` total rather than `2n²`),
/// * one combined contributor-commitment identity
///   `∏_i C_{i,d_i}^{ρⁱ} = ∏_i F_{i,0}^{ρⁱ}`.
///
/// Shape/weight screening and the dealer signatures of knowledge stay
/// per-transcript (compact Schnorr signatures transmit the challenge, not
/// the nonce commitment, so they cannot be folded into a linear
/// combination).  **Fallback:** when the batch has fewer than two
/// algebraically screenable transcripts, or when any combined check fails,
/// every surviving transcript is re-verified with the exact per-transcript
/// path, so the returned flags always equal what `verify_single_dealer`
/// would report, transcript by transcript.
///
/// `entries` are `(dealer, script)` pairs; the result is one flag per entry.
pub fn verify_single_dealer_batch(
    params: &PvssParams,
    eks: &[PvssEncryptionKey],
    vks: &[VerifyingKey],
    entries: &[(usize, &PvssScript)],
    entropy: &[u8],
) -> Vec<bool> {
    let mut flags = vec![false; entries.len()];
    if eks.len() != params.n || vks.len() != params.n {
        return flags;
    }
    let survivors: Vec<usize> = entries
        .iter()
        .enumerate()
        .filter(|(_, (dealer, script))| {
            script.single_dealer_shape_ok(params, *dealer)
                && script.dealer_sok_ok(vks, *dealer)
        })
        .map(|(slot, _)| slot)
        .collect();
    let fallback = |flags: &mut Vec<bool>| {
        for &slot in &survivors {
            let (dealer, script) = entries[slot];
            flags[slot] = script.verify_single_dealer(params, eks, vks, dealer);
        }
    };
    if survivors.len() < 2 {
        fallback(&mut flags);
        return flags;
    }
    // One small hash binds the secret entropy to this batch's dealer set;
    // everything random below expands from it without touching the (large)
    // transcripts again.
    let mut binding = Vec::with_capacity(8 * (survivors.len() + 1));
    binding.extend_from_slice(&(survivors.len() as u64).to_le_bytes());
    for &slot in &survivors {
        binding.extend_from_slice(&(entries[slot].0 as u64).to_le_bytes());
    }
    let rho = nonzero(Scalar::from_hash("setupfree/pvss/batch/rho", &[entropy, &binding]));
    let alpha = nonzero(Scalar::from_hash("setupfree/pvss/batch/alpha", &[entropy, &binding]));
    let weights = powers_of(rho, survivors.len());
    // Column accumulators: Σ_i ρⁱ·(component of script i), per position.
    let mut f_cols = vec![G1::identity(); params.degree + 1];
    let mut a_cols = vec![G1::identity(); params.n];
    let mut y_cols = vec![G2::identity(); params.n];
    let mut u2_combined = G2::identity();
    let mut c_combined = G1::identity();
    for (&slot, r) in survivors.iter().zip(weights.iter()) {
        let (dealer, script) = entries[slot];
        for (col, f_k) in f_cols.iter_mut().zip(script.f_coeffs.iter()) {
            *col = *col * f_k.pow(*r);
        }
        for (col, a_j) in a_cols.iter_mut().zip(script.a_evals.iter()) {
            *col = *col * a_j.pow(*r);
        }
        for (col, y_j) in y_cols.iter_mut().zip(script.y_encs.iter()) {
            *col = *col * y_j.pow(*r);
        }
        u2_combined = u2_combined * script.u2.pow(*r);
        c_combined = c_combined * script.c_comms[dealer].expect("shape-checked above").pow(*r);
    }
    let coeffs = share_point_table(params.n).coefficients_at(alpha);
    let lowdeg_lhs = G1::multi_exp(&a_cols, &coeffs);
    let lowdeg_rhs = G1::multi_exp(&f_cols, &powers_of(alpha, f_cols.len()));
    let ok = lowdeg_lhs == lowdeg_rhs
        && pairing(f_cols[0], u1()) == pairing(G1::generator(), u2_combined)
        && c_combined == f_cols[0]
        && (0..params.n).all(|j| {
            pairing(a_cols[j], eks[j].0) == pairing(G1::generator(), y_cols[j])
        });
    if ok {
        for &slot in &survivors {
            flags[slot] = true;
        }
    } else {
        // At least one transcript is bad: identify it with the exact path.
        fallback(&mut flags);
    }
    flags
}

/// Maps the zero scalar to one (batch challenges must be non-zero).
fn nonzero(s: Scalar) -> Scalar {
    if s.is_zero() {
        Scalar::one()
    } else {
        s
    }
}

fn sok_context(dealer: usize) -> Vec<u8> {
    let mut ctx = b"setupfree/pvss/sok/".to_vec();
    ctx.extend_from_slice(&(dealer as u64).to_le_bytes());
    ctx
}

fn sok_sign(sk: &SigningKey, dealer: usize, c_i: &G1) -> Signature {
    sk.sign(&sok_context(dealer), &setupfree_wire::to_bytes(c_i))
}

fn sok_verify(vk: &VerifyingKey, dealer: usize, c_i: &G1, sig: &Signature) -> bool {
    vk.verify(&sok_context(dealer), &setupfree_wire::to_bytes(c_i), sig)
}

impl Encode for PvssEncryptionKey {
    fn encode(&self, w: &mut Writer) {
        self.0.encode(w);
    }
}

impl Decode for PvssEncryptionKey {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(PvssEncryptionKey(G2::decode(r)?))
    }
}

impl Encode for PvssShare {
    fn encode(&self, w: &mut Writer) {
        self.0.encode(w);
    }
}

impl Decode for PvssShare {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(PvssShare(G2::decode(r)?))
    }
}

impl Encode for PvssSecret {
    fn encode(&self, w: &mut Writer) {
        self.0.encode(w);
    }
}

impl Decode for PvssSecret {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(PvssSecret(G2::decode(r)?))
    }
}

// The wire format omits everything derivable or sparse:
//
// * `a_evals` never travels — `A_j = g1^{F(ω_j)} = Π_k F_k^{ω_j^k}` is fully
//   determined by `f_coeffs`, so the decoder recomputes it (n multi-exps of
//   size `deg+1` over the simulated group).  This drops `n` group elements
//   per script and makes wire-level `a_evals` tampering unrepresentable: the
//   low-degree check (1) holds by construction for every decoded script,
//   while the per-receiver pairing checks still bind the encrypted shares to
//   the committed polynomial.
// * `c_comms` / `weights` / `soks` are dense `n`-vectors with only
//   `contributor_count()` live entries (one for a fresh deal); they travel as
//   a sparse, strictly-ascending contributor list.
impl Encode for PvssScript {
    fn encode(&self, w: &mut Writer) {
        self.f_coeffs.encode(w);
        self.u2.encode(w);
        self.y_encs.encode(w);
        let contributors: Vec<(u32, u32, &G1, &Signature)> = self
            .weights
            .iter()
            .enumerate()
            .filter(|(_, w)| **w > 0)
            .map(|(i, weight)| {
                let c = self.c_comms[i].as_ref().expect("contributor without commitment");
                let sok = self.soks[i].as_ref().expect("contributor without SoK");
                (i as u32, *weight, c, sok)
            })
            .collect();
        contributors.encode(w);
    }
}

impl Decode for PvssScript {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let f_coeffs = Vec::<G1>::decode(r)?;
        let u2 = G2::decode(r)?;
        let y_encs = Vec::<G2>::decode(r)?;
        let n = y_encs.len();
        if f_coeffs.is_empty() || f_coeffs.len() > n {
            return Err(WireError::InvalidValue { ty: "PvssScript" });
        }
        let a_evals: Vec<G1> = (1..=n)
            .map(|j| G1::multi_exp(&f_coeffs, &powers_of(Scalar::from_u64(j as u64), f_coeffs.len())))
            .collect();
        let contributors = Vec::<(u32, u32, G1, Signature)>::decode(r)?;
        let mut c_comms = vec![None; n];
        let mut weights = vec![0u32; n];
        let mut soks = vec![None; n];
        let mut prev: Option<u32> = None;
        for (idx, weight, c, sok) in contributors {
            if idx as usize >= n || weight == 0 || prev.is_some_and(|p| p >= idx) {
                return Err(WireError::InvalidValue { ty: "PvssScript" });
            }
            prev = Some(idx);
            c_comms[idx as usize] = Some(c);
            weights[idx as usize] = weight;
            soks[idx as usize] = Some(sok);
        }
        Ok(PvssScript { f_coeffs, u2, a_evals, y_encs, c_comms, weights, soks })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct Fixture {
        params: PvssParams,
        dks: Vec<PvssDecryptionKey>,
        eks: Vec<PvssEncryptionKey>,
        sig_keys: Vec<SigningKey>,
        vks: Vec<VerifyingKey>,
    }

    fn fixture(n: usize, degree: usize, seed: u64) -> Fixture {
        let mut rng = StdRng::seed_from_u64(seed);
        let params = PvssParams::new(n, degree);
        let mut dks = Vec::new();
        let mut eks = Vec::new();
        let mut sig_keys = Vec::new();
        let mut vks = Vec::new();
        for _ in 0..n {
            let (dk, ek) = PvssDecryptionKey::generate(&mut rng);
            dks.push(dk);
            eks.push(ek);
            let sk = SigningKey::generate(&mut rng);
            vks.push(sk.verifying_key());
            sig_keys.push(sk);
        }
        Fixture { params, dks, eks, sig_keys, vks }
    }

    fn deal(fx: &Fixture, dealer: usize, secret: u64, seed: u64) -> PvssScript {
        let mut rng = StdRng::seed_from_u64(seed);
        PvssScript::deal(
            &fx.params,
            &fx.eks,
            &fx.sig_keys[dealer],
            dealer,
            Scalar::from_u64(secret),
            &mut rng,
        )
    }

    #[test]
    fn deal_verify_single() {
        let fx = fixture(7, 4, 1);
        let script = deal(&fx, 2, 777, 10);
        assert!(script.verify(&fx.params, &fx.eks, &fx.vks));
        assert!(script.verify_single_dealer(&fx.params, &fx.eks, &fx.vks, 2));
        assert!(!script.verify_single_dealer(&fx.params, &fx.eks, &fx.vks, 3));
        assert_eq!(script.contributor_count(), 1);
    }

    #[test]
    fn shares_decrypt_verify_and_reconstruct() {
        let fx = fixture(7, 4, 2);
        let secret = 424242u64;
        let script = deal(&fx, 0, secret, 11);
        let mut shares = Vec::new();
        for i in 0..fx.params.n {
            let share = script.decrypt_share(i, &fx.dks[i]);
            assert!(script.verify_share(i, &share));
            shares.push((i, share));
        }
        let reconstructed = script.reconstruct(&fx.params, &shares[..5]).unwrap();
        assert!(script.verify_secret(&reconstructed));
        // The committed secret is ĥ^{F(0)} = ĥ^{secret}.
        assert_eq!(reconstructed.0, G2::generator_pow(Scalar::from_u64(secret)));
    }

    #[test]
    fn reconstruct_rejects_insufficient_or_duplicate_shares() {
        let fx = fixture(7, 4, 3);
        let script = deal(&fx, 1, 5, 12);
        let shares: Vec<(usize, PvssShare)> =
            (0..4).map(|i| (i, script.decrypt_share(i, &fx.dks[i]))).collect();
        assert!(matches!(
            script.reconstruct(&fx.params, &shares),
            Err(PvssError::NotEnoughShares { got: 4, need: 5 })
        ));
        let mut dup = shares.clone();
        dup.push(shares[0]);
        assert!(matches!(
            script.reconstruct(&fx.params, &dup),
            Err(PvssError::DuplicateShare { index: 0 })
        ));
    }

    #[test]
    fn invalid_shares_are_ignored_during_reconstruction() {
        let fx = fixture(7, 2, 4);
        let script = deal(&fx, 1, 99, 13);
        let mut shares: Vec<(usize, PvssShare)> =
            (0..3).map(|i| (i, script.decrypt_share(i, &fx.dks[i]))).collect();
        // A corrupted share from party 3.
        shares.push((3, PvssShare(G2::generator_pow(Scalar::from_u64(1)))));
        let reconstructed = script.reconstruct(&fx.params, &shares).unwrap();
        assert!(script.verify_secret(&reconstructed));
    }

    #[test]
    fn aggregation_sums_secrets_and_weights() {
        let fx = fixture(7, 4, 5);
        let s1 = deal(&fx, 0, 100, 14);
        let s2 = deal(&fx, 3, 23, 15);
        let agg = s1.aggregate(&s2).unwrap();
        assert!(agg.verify(&fx.params, &fx.eks, &fx.vks));
        assert_eq!(agg.weights()[0], 1);
        assert_eq!(agg.weights()[3], 1);
        assert_eq!(agg.contributor_count(), 2);
        // Reconstruct and check the aggregated secret is the sum.
        let shares: Vec<(usize, PvssShare)> =
            (0..5).map(|i| (i, agg.decrypt_share(i, &fx.dks[i]))).collect();
        let secret = agg.reconstruct(&fx.params, &shares).unwrap();
        assert_eq!(secret.0, G2::generator_pow(Scalar::from_u64(123)));
    }

    #[test]
    fn aggregate_all_matches_pairwise() {
        let fx = fixture(4, 2, 6);
        let scripts: Vec<PvssScript> = (0..3).map(|i| deal(&fx, i, (i as u64 + 1) * 10, 20 + i as u64)).collect();
        let all = PvssScript::aggregate_all(&scripts).unwrap();
        let pairwise = scripts[0].aggregate(&scripts[1]).unwrap().aggregate(&scripts[2]).unwrap();
        assert_eq!(all, pairwise);
        assert!(all.verify(&fx.params, &fx.eks, &fx.vks));
    }

    #[test]
    fn tampered_script_rejected() {
        let fx = fixture(7, 4, 7);
        let mut script = deal(&fx, 2, 7, 16);
        // Tamper with one encrypted share: pairing check (3) must fail.
        script.y_encs[1] = script.y_encs[1] * G2::generator();
        assert!(!script.verify(&fx.params, &fx.eks, &fx.vks));
    }

    #[test]
    fn forged_weight_without_sok_rejected() {
        let fx = fixture(7, 4, 8);
        let mut script = deal(&fx, 2, 7, 17);
        // Claim a contribution from party 5 without a valid SoK.
        script.weights[5] = 1;
        script.c_comms[5] = Some(G1::generator());
        assert!(!script.verify(&fx.params, &fx.eks, &fx.vks));
    }

    #[test]
    fn wrong_degree_rejected() {
        let fx = fixture(7, 4, 9);
        let script = deal(&fx, 2, 7, 18);
        let wrong = PvssParams::new(7, 3);
        assert!(!script.verify(&wrong, &fx.eks, &fx.vks));
    }

    #[test]
    fn wire_roundtrip() {
        let fx = fixture(5, 2, 10);
        let script = deal(&fx, 1, 55, 19);
        let bytes = setupfree_wire::to_bytes(&script);
        let decoded = setupfree_wire::from_bytes::<PvssScript>(&bytes).unwrap();
        assert_eq!(decoded, script);
        assert!(decoded.verify(&fx.params, &fx.eks, &fx.vks));
    }

    #[test]
    fn script_size_is_linear_in_n() {
        let sizes: Vec<usize> = [4usize, 8, 16]
            .iter()
            .map(|&n| {
                let fx = fixture(n, 2 * ((n - 1) / 3), 11);
                let script = deal(&fx, 0, 1, 30);
                setupfree_wire::to_bytes(&script).len()
            })
            .collect();
        // Doubling n should roughly double the size (within 3x slack for the
        // constant-size parts).
        assert!(sizes[1] < sizes[0] * 3);
        assert!(sizes[2] < sizes[1] * 3);
        assert!(sizes[2] > sizes[0]);
    }

    #[test]
    #[should_panic(expected = "cannot reconstruct")]
    fn invalid_params_panic() {
        PvssParams::new(3, 3);
    }

    #[test]
    fn batch_verification_accepts_a_full_honest_setup() {
        let n = 7;
        let fx = fixture(n, 4, 40);
        let scripts: Vec<PvssScript> =
            (0..n).map(|d| deal(&fx, d, 100 + d as u64, 50 + d as u64)).collect();
        let entries: Vec<(usize, &PvssScript)> = scripts.iter().enumerate().collect();
        let flags = verify_single_dealer_batch(&fx.params, &fx.eks, &fx.vks, &entries, b"test-entropy");
        assert_eq!(flags, vec![true; n]);
    }

    #[test]
    fn batch_verification_flags_exactly_the_tampered_transcript() {
        let n = 5;
        let fx = fixture(n, 2, 41);
        let mut scripts: Vec<PvssScript> =
            (0..n).map(|d| deal(&fx, d, 7 + d as u64, 60 + d as u64)).collect();
        // Tamper with one encrypted share of script 2 (an algebraic defect
        // the shape screening cannot see).
        scripts[2].y_encs[1] = scripts[2].y_encs[1] * G2::generator();
        let entries: Vec<(usize, &PvssScript)> = scripts.iter().enumerate().collect();
        let flags = verify_single_dealer_batch(&fx.params, &fx.eks, &fx.vks, &entries, b"test-entropy");
        assert_eq!(flags, vec![true, true, false, true, true]);
    }

    #[test]
    fn batch_verification_rejects_wrong_dealer_claims() {
        let fx = fixture(5, 2, 42);
        let script = deal(&fx, 1, 9, 61);
        let other = deal(&fx, 2, 10, 62);
        // Claiming the wrong dealer index fails the weight screening.
        let entries = vec![(0usize, &script), (2usize, &other)];
        let flags = verify_single_dealer_batch(&fx.params, &fx.eks, &fx.vks, &entries, b"test-entropy");
        assert_eq!(flags, vec![false, true]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn prop_verify_rejects_any_tampered_transcript(
            secret in any::<u64>(),
            dealer in 0usize..5,
            seed in any::<u64>(),
            tamper in 0usize..6,
            slot in 0usize..5,
        ) {
            // Whatever single component of a valid script an adversary
            // mutates — a coefficient commitment, the secret commitment, an
            // evaluation commitment, an encrypted share, a claimed weight or
            // a contributor commitment — verification must reject.
            let n = 5;
            let degree = 2;
            let fx = fixture(n, degree, seed);
            let mut script = deal(&fx, dealer, secret, seed ^ 0x5eed);
            prop_assert!(script.verify(&fx.params, &fx.eks, &fx.vks));
            match tamper {
                0 => {
                    let k = slot % (degree + 1);
                    script.f_coeffs[k] = script.f_coeffs[k] * G1::generator();
                }
                1 => script.u2 = script.u2 * G2::generator(),
                2 => script.a_evals[slot] = script.a_evals[slot] * G1::generator(),
                3 => script.y_encs[slot] = script.y_encs[slot] * G2::generator(),
                4 => script.weights[dealer] += 1,
                _ => {
                    let prev = script.c_comms[dealer].expect("dealer contributed");
                    script.c_comms[dealer] = Some(prev * G1::generator());
                }
            }
            prop_assert!(
                !script.verify(&fx.params, &fx.eks, &fx.vks),
                "tamper kind {} (slot {}) went undetected", tamper, slot
            );
        }

        #[test]
        fn prop_batch_verification_equals_per_transcript(
            seed in any::<u64>(),
            tampered in 0usize..5,
            tamper_kind in 0usize..4,
            do_tamper in any::<bool>(),
        ) {
            // Batch verification must accept exactly the transcripts the
            // per-transcript path accepts — for fully honest batches and for
            // batches with any single tampered transcript.
            let n = 5;
            let fx = fixture(n, 2, seed);
            let mut scripts: Vec<PvssScript> =
                (0..n).map(|d| deal(&fx, d, seed ^ d as u64, seed.wrapping_add(d as u64))).collect();
            if do_tamper {
                let s = &mut scripts[tampered];
                match tamper_kind {
                    0 => s.f_coeffs[0] = s.f_coeffs[0] * G1::generator(),
                    1 => s.u2 = s.u2 * G2::generator(),
                    2 => s.a_evals[0] = s.a_evals[0] * G1::generator(),
                    _ => s.y_encs[0] = s.y_encs[0] * G2::generator(),
                }
            }
            let entries: Vec<(usize, &PvssScript)> = scripts.iter().enumerate().collect();
            let batch = verify_single_dealer_batch(&fx.params, &fx.eks, &fx.vks, &entries, b"test-entropy");
            let individual: Vec<bool> = entries
                .iter()
                .map(|(d, s)| s.verify_single_dealer(&fx.params, &fx.eks, &fx.vks, *d))
                .collect();
            prop_assert_eq!(batch, individual);
        }
    }

    use proptest::prelude::*;
}
