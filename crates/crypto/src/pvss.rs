//! Aggregatable public verifiable secret sharing (Gurkan et al.,
//! EUROCRYPT '21), following the algorithm suite in the paper's Appendix B
//! (Alg 6): `Deal`, `VrfyScript`, `AggScripts`, `GetShare`, `VrfyShare`,
//! `AggShares`, `VrfySecret` and `Weights`, with per-contributor weight tags
//! authenticated by signatures of knowledge.
//!
//! The scheme is instantiated over the simulated bilinear group
//! ([`crate::pairing`]); see DESIGN.md §2 for the substitution rationale.
//! Every verification equation from Alg 6 is implemented verbatim:
//!
//! * low-degree consistency of the evaluation vector (`∏ A_j^{ℓ_j(α)} = ∏ F_k^{α^k}`),
//! * `e(F_0, û_1) = e(g_1, û_2)`,
//! * `e(g_1, Ŷ_j) = e(A_j, ek_j)` for every share,
//! * signature-of-knowledge checks for every non-zero weight,
//! * `∏ C_i^{w_i} = F_0`.

use rand::Rng;
use setupfree_wire::{Decode, Encode, Reader, WireError, Writer};

use crate::hash::hash_fields;
use crate::pairing::{pairing, G1, G2};
use crate::poly::{lagrange_coefficient, Polynomial};
use crate::scalar::Scalar;
use crate::sig::{Signature, SigningKey, VerifyingKey};

/// Parameters of a `(n, degree)` aggregatable PVSS: `n` receivers, secret
/// polynomial of degree `degree`, reconstruction from any `degree + 1`
/// shares.  The Seeding protocol uses `degree = 2f` (secrecy threshold
/// `2f + 1`, per Appendix B.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PvssParams {
    /// Number of receiving parties.
    pub n: usize,
    /// Degree of the shared polynomial.
    pub degree: usize,
}

impl PvssParams {
    /// Creates parameters, validating that reconstruction is possible.
    ///
    /// # Panics
    ///
    /// Panics if `degree + 1 > n`.
    pub fn new(n: usize, degree: usize) -> Self {
        assert!(degree < n, "cannot reconstruct a degree-{degree} polynomial with only {n} shares");
        PvssParams { n, degree }
    }

    /// Number of shares required to reconstruct.
    pub fn reconstruction_threshold(&self) -> usize {
        self.degree + 1
    }
}

/// A PVSS decryption key (held privately by each receiver).
#[derive(Debug, Clone, Copy)]
pub struct PvssDecryptionKey(pub(crate) Scalar);

/// A PVSS encryption key (registered at the bulletin PKI): `ek_i = ĥ_1^{dk_i}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PvssEncryptionKey(pub(crate) G2);

impl PvssDecryptionKey {
    /// Generates a fresh decryption/encryption key pair.
    pub fn generate<R: Rng + ?Sized>(rng: &mut R) -> (Self, PvssEncryptionKey) {
        let dk = Scalar::random_nonzero(rng);
        (PvssDecryptionKey(dk), PvssEncryptionKey(G2::generator().pow(dk)))
    }
}

/// The second G2 generator `û_1` (independent of `ĥ_1`), derived by hashing.
fn u1() -> G2 {
    G2::generator_pow(Scalar::from_hash("setupfree/pvss/u1", &[b"generator"]))
}

/// A decrypted share `ĥ_1^{F(ω_i)}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PvssShare(pub(crate) G2);

/// The reconstructed committed secret `ĥ_1^{F(0)}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PvssSecret(pub(crate) G2);

impl PvssSecret {
    /// Canonical byte representation, used to derive the λ-bit seed output by
    /// the Seeding protocol.
    pub fn to_seed_bytes(&self) -> [u8; 32] {
        hash_fields("setupfree/pvss/seed", &[&setupfree_wire::to_bytes(&self.0)])
    }
}

/// A PVSS transcript ("script" in the paper): the polynomial commitment, the
/// encrypted shares, and the aggregatable weight tags.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PvssScript {
    /// `F_0 … F_t`: commitments to the polynomial coefficients (`g_1^{a_k}`).
    f_coeffs: Vec<G1>,
    /// `û_2 = û_1^{a_0}`.
    u2: G2,
    /// `A_1 … A_n`: commitments to the evaluations (`g_1^{F(ω_j)}`).
    a_evals: Vec<G1>,
    /// `Ŷ_1 … Ŷ_n`: encrypted shares (`ek_j^{F(ω_j)}`).
    y_encs: Vec<G2>,
    /// `C_i`: per-contributor commitments to their constant term.
    c_comms: Vec<Option<G1>>,
    /// Contribution weights `w`.
    weights: Vec<u32>,
    /// Signatures of knowledge binding each contribution to its author.
    soks: Vec<Option<Signature>>,
}

/// Error returned by the fallible PVSS operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PvssError {
    /// The two scripts being aggregated have inconsistent dimensions.
    DimensionMismatch,
    /// Aggregation found two different commitments claimed by the same party.
    ConflictingContribution {
        /// The party whose contributions conflict.
        party: usize,
    },
    /// Not enough valid shares to reconstruct.
    NotEnoughShares {
        /// Shares provided.
        got: usize,
        /// Shares required.
        need: usize,
    },
    /// Duplicate share indices were provided to reconstruction.
    DuplicateShare {
        /// The duplicated index.
        index: usize,
    },
}

impl std::fmt::Display for PvssError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PvssError::DimensionMismatch => write!(f, "pvss scripts have mismatched dimensions"),
            PvssError::ConflictingContribution { party } => {
                write!(f, "conflicting contribution for party {party}")
            }
            PvssError::NotEnoughShares { got, need } => {
                write!(f, "not enough shares to reconstruct: got {got}, need {need}")
            }
            PvssError::DuplicateShare { index } => write!(f, "duplicate share for index {index}"),
        }
    }
}

impl std::error::Error for PvssError {}

impl PvssScript {
    /// `Deal(ek, sk_i, s)`: produces a fresh single-contributor script for
    /// dealer `dealer` (0-based) sharing secret `secret`.
    pub fn deal<R: Rng + ?Sized>(
        params: &PvssParams,
        eks: &[PvssEncryptionKey],
        signing_key: &SigningKey,
        dealer: usize,
        secret: Scalar,
        rng: &mut R,
    ) -> Self {
        assert_eq!(eks.len(), params.n, "one encryption key per receiver is required");
        assert!(dealer < params.n, "dealer index out of range");
        let poly = Polynomial::random_with_constant(secret, params.degree, rng);
        let f_coeffs: Vec<G1> = poly.coeffs().iter().map(|c| G1::generator_pow(*c)).collect();
        let u2 = u1().pow(secret);
        let a_evals: Vec<G1> =
            (1..=params.n).map(|j| G1::generator_pow(poly.eval_at_index(j))).collect();
        let y_encs: Vec<G2> =
            (1..=params.n).map(|j| eks[j - 1].0.pow(poly.eval_at_index(j))).collect();
        let mut c_comms = vec![None; params.n];
        let mut weights = vec![0u32; params.n];
        let mut soks = vec![None; params.n];
        let c_i = G1::generator_pow(secret);
        c_comms[dealer] = Some(c_i);
        weights[dealer] = 1;
        soks[dealer] = Some(sok_sign(signing_key, dealer, &c_i));
        PvssScript { f_coeffs, u2, a_evals, y_encs, c_comms, weights, soks }
    }

    /// `Weights(pvss)`: the per-party contribution weight vector.
    pub fn weights(&self) -> &[u32] {
        &self.weights
    }

    /// Number of distinct contributors (non-zero weights).
    pub fn contributor_count(&self) -> usize {
        self.weights.iter().filter(|w| **w > 0).count()
    }

    /// `F_0`, the commitment to the aggregated secret.
    pub fn public_commitment(&self) -> G1 {
        self.f_coeffs[0]
    }

    /// `VrfyScript(ek, vk, pvss)`: full public verification of the script.
    pub fn verify(
        &self,
        params: &PvssParams,
        eks: &[PvssEncryptionKey],
        vks: &[VerifyingKey],
    ) -> bool {
        if self.f_coeffs.len() != params.degree + 1
            || self.a_evals.len() != params.n
            || self.y_encs.len() != params.n
            || self.c_comms.len() != params.n
            || self.weights.len() != params.n
            || self.soks.len() != params.n
            || eks.len() != params.n
            || vks.len() != params.n
        {
            return false;
        }
        // (1) Low-degree consistency at a Fiat–Shamir challenge point α:
        //     ∏_j A_j^{ℓ_j(α)} must equal ∏_k F_k^{α^k}.
        let alpha = self.challenge_point();
        let xs: Vec<Scalar> = (1..=params.n).map(|j| Scalar::from_u64(j as u64)).collect();
        let mut lhs = G1::identity();
        for (j, a_j) in self.a_evals.iter().enumerate() {
            lhs = lhs * a_j.pow(lagrange_coefficient(&xs, j, alpha));
        }
        let mut rhs = G1::identity();
        let mut power = Scalar::one();
        for f_k in &self.f_coeffs {
            rhs = rhs * f_k.pow(power);
            power *= alpha;
        }
        if lhs != rhs {
            return false;
        }
        // (2) e(F_0, û_1) = e(g_1, û_2).
        if pairing(self.f_coeffs[0], u1()) != pairing(G1::generator(), self.u2) {
            return false;
        }
        // (3) e(g_1, Ŷ_j) = e(A_j, ek_j) for every receiver.
        for ((y_j, a_j), ek_j) in self.y_encs.iter().zip(&self.a_evals).zip(eks) {
            if pairing(G1::generator(), *y_j) != pairing(*a_j, ek_j.0) {
                return false;
            }
        }
        // (4) Signature-of-knowledge check for every claimed contributor.
        for (i, vk_i) in vks.iter().enumerate() {
            if self.weights[i] != 0 {
                match (&self.c_comms[i], &self.soks[i]) {
                    (Some(c_i), Some(sok)) => {
                        if !sok_verify(vk_i, i, c_i, sok) {
                            return false;
                        }
                    }
                    _ => return false,
                }
            }
        }
        // (5) ∏ C_i^{w_i} = F_0.
        let mut acc = G1::identity();
        for i in 0..params.n {
            if self.weights[i] != 0 {
                let c_i = match self.c_comms[i] {
                    Some(c) => c,
                    None => return false,
                };
                acc = acc * c_i.pow(Scalar::from_u64(u64::from(self.weights[i])));
            }
        }
        acc == self.f_coeffs[0]
    }

    /// Verifies a fresh single-dealer script: in addition to [`Self::verify`],
    /// requires weight exactly one at `dealer` and zero elsewhere (the check
    /// performed by the Seeding leader in Alg 7 line 19).
    pub fn verify_single_dealer(
        &self,
        params: &PvssParams,
        eks: &[PvssEncryptionKey],
        vks: &[VerifyingKey],
        dealer: usize,
    ) -> bool {
        if dealer >= params.n {
            return false;
        }
        let weights_ok = self
            .weights
            .iter()
            .enumerate()
            .all(|(i, w)| if i == dealer { *w == 1 } else { *w == 0 });
        weights_ok && self.verify(params, eks, vks)
    }

    /// `AggScripts(pvss1, pvss2)`: aggregates two scripts.
    ///
    /// # Errors
    ///
    /// Returns [`PvssError`] if the scripts have mismatched dimensions or
    /// conflicting per-party contributions.
    pub fn aggregate(&self, other: &PvssScript) -> Result<PvssScript, PvssError> {
        if self.f_coeffs.len() != other.f_coeffs.len()
            || self.a_evals.len() != other.a_evals.len()
            || self.y_encs.len() != other.y_encs.len()
        {
            return Err(PvssError::DimensionMismatch);
        }
        let f_coeffs =
            self.f_coeffs.iter().zip(other.f_coeffs.iter()).map(|(a, b)| *a * *b).collect();
        let u2 = self.u2 * other.u2;
        let a_evals = self.a_evals.iter().zip(other.a_evals.iter()).map(|(a, b)| *a * *b).collect();
        let y_encs = self.y_encs.iter().zip(other.y_encs.iter()).map(|(a, b)| *a * *b).collect();
        let n = self.weights.len();
        let mut c_comms = Vec::with_capacity(n);
        let mut weights = Vec::with_capacity(n);
        let mut soks = Vec::with_capacity(n);
        for i in 0..n {
            weights.push(self.weights[i] + other.weights[i]);
            let c = match (self.c_comms[i], other.c_comms[i]) {
                (Some(a), Some(b)) => {
                    if a != b {
                        return Err(PvssError::ConflictingContribution { party: i });
                    }
                    Some(a)
                }
                (Some(a), None) => Some(a),
                (None, b) => b,
            };
            c_comms.push(c);
            soks.push(self.soks[i].or(other.soks[i]));
        }
        Ok(PvssScript { f_coeffs, u2, a_evals, y_encs, c_comms, weights, soks })
    }

    /// Aggregates a non-empty collection of scripts.
    ///
    /// # Errors
    ///
    /// Propagates aggregation errors; errors if `scripts` is empty.
    pub fn aggregate_all(scripts: &[PvssScript]) -> Result<PvssScript, PvssError> {
        let (first, rest) = scripts.split_first().ok_or(PvssError::DimensionMismatch)?;
        let mut acc = first.clone();
        for s in rest {
            acc = acc.aggregate(s)?;
        }
        Ok(acc)
    }

    /// `GetShare(dk_i, pvss)`: decrypts party `i`'s share `ĥ_1^{F(ω_i)}`.
    pub fn decrypt_share(&self, index: usize, dk: &PvssDecryptionKey) -> PvssShare {
        PvssShare(self.y_encs[index].pow(dk.0.invert()))
    }

    /// `VrfyShare(j, sh_j, pvss)`: checks `e(A_j, ĥ_1) = e(g_1, sh_j)`.
    pub fn verify_share(&self, index: usize, share: &PvssShare) -> bool {
        if index >= self.a_evals.len() {
            return false;
        }
        pairing(self.a_evals[index], G2::generator()) == pairing(G1::generator(), share.0)
    }

    /// `AggShares({(j, sh_j)})`: reconstructs the committed secret from
    /// `degree + 1` or more valid shares (Lagrange interpolation in the
    /// exponent).
    ///
    /// # Errors
    ///
    /// Returns [`PvssError`] on insufficient or duplicate shares.
    pub fn reconstruct(
        &self,
        params: &PvssParams,
        shares: &[(usize, PvssShare)],
    ) -> Result<PvssSecret, PvssError> {
        let need = params.reconstruction_threshold();
        let mut seen = std::collections::BTreeSet::new();
        let mut valid: Vec<(usize, PvssShare)> = Vec::new();
        for (idx, share) in shares {
            if !seen.insert(*idx) {
                return Err(PvssError::DuplicateShare { index: *idx });
            }
            if self.verify_share(*idx, share) {
                valid.push((*idx, *share));
            }
        }
        if valid.len() < need {
            return Err(PvssError::NotEnoughShares { got: valid.len(), need });
        }
        let subset = &valid[..need];
        let xs: Vec<Scalar> = subset.iter().map(|(i, _)| Scalar::from_u64(*i as u64 + 1)).collect();
        let mut acc = G2::identity();
        for (j, (_, share)) in subset.iter().enumerate() {
            acc = acc * share.0.pow(lagrange_coefficient(&xs, j, Scalar::zero()));
        }
        Ok(PvssSecret(acc))
    }

    /// `VrfySecret(s, pvss)`: checks `e(F_0, ĥ_1) = e(g_1, s)`.
    pub fn verify_secret(&self, secret: &PvssSecret) -> bool {
        pairing(self.f_coeffs[0], G2::generator()) == pairing(G1::generator(), secret.0)
    }

    /// Deterministic Fiat–Shamir challenge for the low-degree test.
    fn challenge_point(&self) -> Scalar {
        let encoded = setupfree_wire::to_bytes(&(self.f_coeffs.clone(), self.a_evals.clone()));
        Scalar::from_hash("setupfree/pvss/alpha", &[&encoded])
    }
}

fn sok_context(dealer: usize) -> Vec<u8> {
    let mut ctx = b"setupfree/pvss/sok/".to_vec();
    ctx.extend_from_slice(&(dealer as u64).to_le_bytes());
    ctx
}

fn sok_sign(sk: &SigningKey, dealer: usize, c_i: &G1) -> Signature {
    sk.sign(&sok_context(dealer), &setupfree_wire::to_bytes(c_i))
}

fn sok_verify(vk: &VerifyingKey, dealer: usize, c_i: &G1, sig: &Signature) -> bool {
    vk.verify(&sok_context(dealer), &setupfree_wire::to_bytes(c_i), sig)
}

impl Encode for PvssEncryptionKey {
    fn encode(&self, w: &mut Writer) {
        self.0.encode(w);
    }
}

impl Decode for PvssEncryptionKey {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(PvssEncryptionKey(G2::decode(r)?))
    }
}

impl Encode for PvssShare {
    fn encode(&self, w: &mut Writer) {
        self.0.encode(w);
    }
}

impl Decode for PvssShare {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(PvssShare(G2::decode(r)?))
    }
}

impl Encode for PvssSecret {
    fn encode(&self, w: &mut Writer) {
        self.0.encode(w);
    }
}

impl Decode for PvssSecret {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(PvssSecret(G2::decode(r)?))
    }
}

impl Encode for PvssScript {
    fn encode(&self, w: &mut Writer) {
        self.f_coeffs.encode(w);
        self.u2.encode(w);
        self.a_evals.encode(w);
        self.y_encs.encode(w);
        self.c_comms.encode(w);
        self.weights.encode(w);
        self.soks.encode(w);
    }
}

impl Decode for PvssScript {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(PvssScript {
            f_coeffs: Vec::<G1>::decode(r)?,
            u2: G2::decode(r)?,
            a_evals: Vec::<G1>::decode(r)?,
            y_encs: Vec::<G2>::decode(r)?,
            c_comms: Vec::<Option<G1>>::decode(r)?,
            weights: Vec::<u32>::decode(r)?,
            soks: Vec::<Option<Signature>>::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct Fixture {
        params: PvssParams,
        dks: Vec<PvssDecryptionKey>,
        eks: Vec<PvssEncryptionKey>,
        sig_keys: Vec<SigningKey>,
        vks: Vec<VerifyingKey>,
    }

    fn fixture(n: usize, degree: usize, seed: u64) -> Fixture {
        let mut rng = StdRng::seed_from_u64(seed);
        let params = PvssParams::new(n, degree);
        let mut dks = Vec::new();
        let mut eks = Vec::new();
        let mut sig_keys = Vec::new();
        let mut vks = Vec::new();
        for _ in 0..n {
            let (dk, ek) = PvssDecryptionKey::generate(&mut rng);
            dks.push(dk);
            eks.push(ek);
            let sk = SigningKey::generate(&mut rng);
            vks.push(sk.verifying_key());
            sig_keys.push(sk);
        }
        Fixture { params, dks, eks, sig_keys, vks }
    }

    fn deal(fx: &Fixture, dealer: usize, secret: u64, seed: u64) -> PvssScript {
        let mut rng = StdRng::seed_from_u64(seed);
        PvssScript::deal(
            &fx.params,
            &fx.eks,
            &fx.sig_keys[dealer],
            dealer,
            Scalar::from_u64(secret),
            &mut rng,
        )
    }

    #[test]
    fn deal_verify_single() {
        let fx = fixture(7, 4, 1);
        let script = deal(&fx, 2, 777, 10);
        assert!(script.verify(&fx.params, &fx.eks, &fx.vks));
        assert!(script.verify_single_dealer(&fx.params, &fx.eks, &fx.vks, 2));
        assert!(!script.verify_single_dealer(&fx.params, &fx.eks, &fx.vks, 3));
        assert_eq!(script.contributor_count(), 1);
    }

    #[test]
    fn shares_decrypt_verify_and_reconstruct() {
        let fx = fixture(7, 4, 2);
        let secret = 424242u64;
        let script = deal(&fx, 0, secret, 11);
        let mut shares = Vec::new();
        for i in 0..fx.params.n {
            let share = script.decrypt_share(i, &fx.dks[i]);
            assert!(script.verify_share(i, &share));
            shares.push((i, share));
        }
        let reconstructed = script.reconstruct(&fx.params, &shares[..5]).unwrap();
        assert!(script.verify_secret(&reconstructed));
        // The committed secret is ĥ^{F(0)} = ĥ^{secret}.
        assert_eq!(reconstructed.0, G2::generator_pow(Scalar::from_u64(secret)));
    }

    #[test]
    fn reconstruct_rejects_insufficient_or_duplicate_shares() {
        let fx = fixture(7, 4, 3);
        let script = deal(&fx, 1, 5, 12);
        let shares: Vec<(usize, PvssShare)> =
            (0..4).map(|i| (i, script.decrypt_share(i, &fx.dks[i]))).collect();
        assert!(matches!(
            script.reconstruct(&fx.params, &shares),
            Err(PvssError::NotEnoughShares { got: 4, need: 5 })
        ));
        let mut dup = shares.clone();
        dup.push(shares[0]);
        assert!(matches!(
            script.reconstruct(&fx.params, &dup),
            Err(PvssError::DuplicateShare { index: 0 })
        ));
    }

    #[test]
    fn invalid_shares_are_ignored_during_reconstruction() {
        let fx = fixture(7, 2, 4);
        let script = deal(&fx, 1, 99, 13);
        let mut shares: Vec<(usize, PvssShare)> =
            (0..3).map(|i| (i, script.decrypt_share(i, &fx.dks[i]))).collect();
        // A corrupted share from party 3.
        shares.push((3, PvssShare(G2::generator_pow(Scalar::from_u64(1)))));
        let reconstructed = script.reconstruct(&fx.params, &shares).unwrap();
        assert!(script.verify_secret(&reconstructed));
    }

    #[test]
    fn aggregation_sums_secrets_and_weights() {
        let fx = fixture(7, 4, 5);
        let s1 = deal(&fx, 0, 100, 14);
        let s2 = deal(&fx, 3, 23, 15);
        let agg = s1.aggregate(&s2).unwrap();
        assert!(agg.verify(&fx.params, &fx.eks, &fx.vks));
        assert_eq!(agg.weights()[0], 1);
        assert_eq!(agg.weights()[3], 1);
        assert_eq!(agg.contributor_count(), 2);
        // Reconstruct and check the aggregated secret is the sum.
        let shares: Vec<(usize, PvssShare)> =
            (0..5).map(|i| (i, agg.decrypt_share(i, &fx.dks[i]))).collect();
        let secret = agg.reconstruct(&fx.params, &shares).unwrap();
        assert_eq!(secret.0, G2::generator_pow(Scalar::from_u64(123)));
    }

    #[test]
    fn aggregate_all_matches_pairwise() {
        let fx = fixture(4, 2, 6);
        let scripts: Vec<PvssScript> = (0..3).map(|i| deal(&fx, i, (i as u64 + 1) * 10, 20 + i as u64)).collect();
        let all = PvssScript::aggregate_all(&scripts).unwrap();
        let pairwise = scripts[0].aggregate(&scripts[1]).unwrap().aggregate(&scripts[2]).unwrap();
        assert_eq!(all, pairwise);
        assert!(all.verify(&fx.params, &fx.eks, &fx.vks));
    }

    #[test]
    fn tampered_script_rejected() {
        let fx = fixture(7, 4, 7);
        let mut script = deal(&fx, 2, 7, 16);
        // Tamper with one encrypted share: pairing check (3) must fail.
        script.y_encs[1] = script.y_encs[1] * G2::generator();
        assert!(!script.verify(&fx.params, &fx.eks, &fx.vks));
    }

    #[test]
    fn forged_weight_without_sok_rejected() {
        let fx = fixture(7, 4, 8);
        let mut script = deal(&fx, 2, 7, 17);
        // Claim a contribution from party 5 without a valid SoK.
        script.weights[5] = 1;
        script.c_comms[5] = Some(G1::generator());
        assert!(!script.verify(&fx.params, &fx.eks, &fx.vks));
    }

    #[test]
    fn wrong_degree_rejected() {
        let fx = fixture(7, 4, 9);
        let script = deal(&fx, 2, 7, 18);
        let wrong = PvssParams::new(7, 3);
        assert!(!script.verify(&wrong, &fx.eks, &fx.vks));
    }

    #[test]
    fn wire_roundtrip() {
        let fx = fixture(5, 2, 10);
        let script = deal(&fx, 1, 55, 19);
        let bytes = setupfree_wire::to_bytes(&script);
        let decoded = setupfree_wire::from_bytes::<PvssScript>(&bytes).unwrap();
        assert_eq!(decoded, script);
        assert!(decoded.verify(&fx.params, &fx.eks, &fx.vks));
    }

    #[test]
    fn script_size_is_linear_in_n() {
        let sizes: Vec<usize> = [4usize, 8, 16]
            .iter()
            .map(|&n| {
                let fx = fixture(n, 2 * ((n - 1) / 3), 11);
                let script = deal(&fx, 0, 1, 30);
                setupfree_wire::to_bytes(&script).len()
            })
            .collect();
        // Doubling n should roughly double the size (within 3x slack for the
        // constant-size parts).
        assert!(sizes[1] < sizes[0] * 3);
        assert!(sizes[2] < sizes[1] * 3);
        assert!(sizes[2] > sizes[0]);
    }

    #[test]
    #[should_panic(expected = "cannot reconstruct")]
    fn invalid_params_panic() {
        PvssParams::new(3, 3);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn prop_verify_rejects_any_tampered_transcript(
            secret in any::<u64>(),
            dealer in 0usize..5,
            seed in any::<u64>(),
            tamper in 0usize..6,
            slot in 0usize..5,
        ) {
            // Whatever single component of a valid script an adversary
            // mutates — a coefficient commitment, the secret commitment, an
            // evaluation commitment, an encrypted share, a claimed weight or
            // a contributor commitment — verification must reject.
            let n = 5;
            let degree = 2;
            let fx = fixture(n, degree, seed);
            let mut script = deal(&fx, dealer, secret, seed ^ 0x5eed);
            prop_assert!(script.verify(&fx.params, &fx.eks, &fx.vks));
            match tamper {
                0 => {
                    let k = slot % (degree + 1);
                    script.f_coeffs[k] = script.f_coeffs[k] * G1::generator();
                }
                1 => script.u2 = script.u2 * G2::generator(),
                2 => script.a_evals[slot] = script.a_evals[slot] * G1::generator(),
                3 => script.y_encs[slot] = script.y_encs[slot] * G2::generator(),
                4 => script.weights[dealer] += 1,
                _ => {
                    let prev = script.c_comms[dealer].expect("dealer contributed");
                    script.c_comms[dealer] = Some(prev * G1::generator());
                }
            }
            prop_assert!(
                !script.verify(&fx.params, &fx.eks, &fx.vks),
                "tamper kind {} (slot {}) went undetected", tamper, slot
            );
        }
    }

    use proptest::prelude::*;
}
