//! Polynomials over the scalar field, Shamir secret sharing, and Lagrange
//! interpolation.
//!
//! These are the arithmetic backbone of the AVSS (Alg 1/2) and of the
//! aggregatable PVSS (Appendix B): secrets are constant terms of random
//! polynomials of degree at most `f` (resp. `t`), shares are evaluations at
//! party-specific points, and reconstruction is Lagrange interpolation at 0.
//!
//! Interpolation over a fixed point set is a protocol hot path — every PVSS
//! verification interpolates over `{1, …, n}` and every reconstruction over
//! the same quorum of share points — so the barycentric denominators are
//! precomputed once per point set in a [`LagrangeTable`] and memoised
//! process-wide by [`lagrange_table`]: the first use of a point set costs
//! `O(k²)` multiplications (plus one batched inversion), every later
//! coefficient-vector evaluation costs `O(k)`.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use rand::Rng;

use crate::scalar::Scalar;

/// A polynomial with scalar coefficients, lowest degree first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Polynomial {
    coeffs: Vec<Scalar>,
}

impl Polynomial {
    /// Creates a polynomial from coefficients (constant term first).
    ///
    /// # Panics
    ///
    /// Panics if `coeffs` is empty.
    pub fn new(coeffs: Vec<Scalar>) -> Self {
        assert!(!coeffs.is_empty(), "a polynomial needs at least one coefficient");
        Polynomial { coeffs }
    }

    /// Samples a uniformly random polynomial of the given degree with the
    /// prescribed constant term (the shared secret).
    pub fn random_with_constant<R: Rng + ?Sized>(constant: Scalar, degree: usize, rng: &mut R) -> Self {
        let mut coeffs = Vec::with_capacity(degree + 1);
        coeffs.push(constant);
        for _ in 0..degree {
            coeffs.push(Scalar::random(rng));
        }
        Polynomial { coeffs }
    }

    /// Samples a uniformly random polynomial of the given degree.
    pub fn random<R: Rng + ?Sized>(degree: usize, rng: &mut R) -> Self {
        Self::random_with_constant(Scalar::random(rng), degree, rng)
    }

    /// Degree of the polynomial (number of coefficients minus one).
    pub fn degree(&self) -> usize {
        self.coeffs.len() - 1
    }

    /// The coefficients, constant term first.
    pub fn coeffs(&self) -> &[Scalar] {
        &self.coeffs
    }

    /// The constant term `P(0)`.
    pub fn constant(&self) -> Scalar {
        self.coeffs[0]
    }

    /// Evaluates the polynomial at `x` by Horner's rule.
    pub fn eval(&self, x: Scalar) -> Scalar {
        let mut acc = Scalar::zero();
        for c in self.coeffs.iter().rev() {
            acc = acc * x + *c;
        }
        acc
    }

    /// Evaluates the polynomial at the canonical share point of party `i`
    /// (1-based point `i + 1` is *not* used; the convention throughout the
    /// workspace is point `x = i` for party index `i ≥ 1`).
    pub fn eval_at_index(&self, i: usize) -> Scalar {
        self.eval(Scalar::from_u64(i as u64))
    }

    /// Adds two polynomials coefficient-wise.
    pub fn add(&self, other: &Polynomial) -> Polynomial {
        let len = self.coeffs.len().max(other.coeffs.len());
        let mut coeffs = Vec::with_capacity(len);
        for i in 0..len {
            let a = self.coeffs.get(i).copied().unwrap_or_else(Scalar::zero);
            let b = other.coeffs.get(i).copied().unwrap_or_else(Scalar::zero);
            coeffs.push(a + b);
        }
        Polynomial { coeffs }
    }
}

/// Lagrange coefficient `ℓ_j(x)` for the interpolation point set `xs`
/// evaluated at `x`.
///
/// One coefficient costs `O(k)` multiplications plus an inversion; callers
/// that need the whole coefficient vector (every interpolation does) should
/// use a cached [`LagrangeTable`] instead.
///
/// # Panics
///
/// Panics if `xs` contains duplicate points.
pub fn lagrange_coefficient(xs: &[Scalar], j: usize, x: Scalar) -> Scalar {
    let xj = xs[j];
    let mut num = Scalar::one();
    let mut den = Scalar::one();
    for (m, &xm) in xs.iter().enumerate() {
        if m == j {
            continue;
        }
        assert!(xm != xj, "duplicate interpolation points");
        num *= x - xm;
        den *= xj - xm;
    }
    num * den.invert()
}

/// Precomputed barycentric denominators for one interpolation point set.
///
/// Construction costs `O(k²)` multiplications and a single (batched)
/// inversion; every subsequent [`Self::coefficients_at`] call is `O(k)` with
/// no inversions — the win that makes repeated PVSS verifications and
/// quorum reconstructions cheap.
#[derive(Debug, Clone)]
pub struct LagrangeTable {
    xs: Vec<Scalar>,
    /// Barycentric weights `w_j = 1 / ∏_{m≠j} (x_j − x_m)`.
    weights: Vec<Scalar>,
}

impl LagrangeTable {
    /// Builds the table for the point set `xs`.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty or contains duplicate points.
    pub fn new(xs: Vec<Scalar>) -> Self {
        assert!(!xs.is_empty(), "interpolation requires at least one point");
        let k = xs.len();
        let mut weights = Vec::with_capacity(k);
        for j in 0..k {
            let mut den = Scalar::one();
            for m in 0..k {
                if m != j {
                    let diff = xs[j] - xs[m];
                    assert!(!diff.is_zero(), "duplicate interpolation points");
                    den *= diff;
                }
            }
            weights.push(den);
        }
        Scalar::batch_invert(&mut weights);
        LagrangeTable { xs, weights }
    }

    /// The interpolation point set.
    pub fn xs(&self) -> &[Scalar] {
        &self.xs
    }

    /// All coefficients `ℓ_0(x), …, ℓ_{k−1}(x)` in `O(k)` via prefix/suffix
    /// products of `(x − x_m)`.
    pub fn coefficients_at(&self, x: Scalar) -> Vec<Scalar> {
        let k = self.xs.len();
        // At an interpolation point the coefficient vector is an indicator.
        if let Some(j) = self.xs.iter().position(|xm| *xm == x) {
            let mut out = vec![Scalar::zero(); k];
            out[j] = Scalar::one();
            return out;
        }
        let mut prefix = Vec::with_capacity(k + 1);
        prefix.push(Scalar::one());
        for xm in &self.xs {
            let last = *prefix.last().expect("non-empty");
            prefix.push(last * (x - *xm));
        }
        let mut out = vec![Scalar::zero(); k];
        let mut suffix = Scalar::one();
        for j in (0..k).rev() {
            out[j] = prefix[j] * suffix * self.weights[j];
            suffix *= x - self.xs[j];
        }
        out
    }

    /// Interpolates the polynomial through `(xs[j], ys[j])` and evaluates it
    /// at `x`.
    ///
    /// # Panics
    ///
    /// Panics if `ys` has a different length than the point set.
    pub fn interpolate_at(&self, ys: &[Scalar], x: Scalar) -> Scalar {
        assert_eq!(ys.len(), self.xs.len(), "one value per interpolation point is required");
        self.coefficients_at(x)
            .into_iter()
            .zip(ys.iter())
            .fold(Scalar::zero(), |acc, (c, y)| acc + c * *y)
    }
}

/// Upper bound on the number of memoised point sets; the cache is cleared
/// when it fills (protocols cycle through a handful of quorums, so in
/// practice it never does).
const LAGRANGE_CACHE_CAP: usize = 256;

static LAGRANGE_CACHE: OnceLock<Mutex<HashMap<Vec<u64>, Arc<LagrangeTable>>>> = OnceLock::new();

/// Returns the process-wide memoised [`LagrangeTable`] for `xs`, building it
/// on first use.  Repeated reconstructions over the same quorum — the normal
/// case in AVSS/PVSS — pay the `O(k²)` table setup only once.
///
/// # Panics
///
/// Panics if `xs` is empty or contains duplicate points.
pub fn lagrange_table(xs: &[Scalar]) -> Arc<LagrangeTable> {
    let key: Vec<u64> = xs.iter().map(|x| x.to_u64()).collect();
    let cache = LAGRANGE_CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    // The critical sections below cannot panic, so a poisoned lock (from a
    // caller that panicked constructing a table) is safe to recover.
    if let Some(table) =
        cache.lock().unwrap_or_else(|e| e.into_inner()).get(&key).cloned()
    {
        return table;
    }
    // Built outside the lock: construction can panic on duplicate points and
    // is the expensive part; a racing duplicate build is harmless.
    let table = Arc::new(LagrangeTable::new(xs.to_vec()));
    let mut map = cache.lock().unwrap_or_else(|e| e.into_inner());
    if map.len() >= LAGRANGE_CACHE_CAP {
        map.clear();
    }
    map.insert(key, table.clone());
    table
}

/// The canonical share-point table `{1, …, n}` used by the PVSS low-degree
/// test and by full-quorum reconstructions.
pub fn share_point_table(n: usize) -> Arc<LagrangeTable> {
    let xs: Vec<Scalar> = (1..=n).map(|i| Scalar::from_u64(i as u64)).collect();
    lagrange_table(&xs)
}

/// Interpolates the unique polynomial through `points` and evaluates it at
/// `x`.  `points` are `(x_i, y_i)` pairs with distinct `x_i`.
///
/// Uses the memoised [`LagrangeTable`] for the point set, so repeated
/// interpolations over the same quorum are `O(k)` after the first.
///
/// # Panics
///
/// Panics if `points` is empty or contains duplicate x-coordinates.
pub fn interpolate_at(points: &[(Scalar, Scalar)], x: Scalar) -> Scalar {
    assert!(!points.is_empty(), "interpolation requires at least one point");
    let xs: Vec<Scalar> = points.iter().map(|(xi, _)| *xi).collect();
    let ys: Vec<Scalar> = points.iter().map(|(_, yi)| *yi).collect();
    lagrange_table(&xs).interpolate_at(&ys, x)
}

/// Interpolates at zero — the common "reconstruct the secret" operation.
pub fn interpolate_at_zero(points: &[(Scalar, Scalar)]) -> Scalar {
    interpolate_at(points, Scalar::zero())
}

/// Produces Shamir shares `(i, P(i))` for parties `1..=n` of a fresh random
/// polynomial with constant term `secret` and degree `threshold`.
///
/// Any `threshold + 1` shares reconstruct the secret; `threshold` shares
/// reveal nothing (information-theoretically).
pub fn shamir_share<R: Rng + ?Sized>(
    secret: Scalar,
    threshold: usize,
    n: usize,
    rng: &mut R,
) -> (Polynomial, Vec<(usize, Scalar)>) {
    let poly = Polynomial::random_with_constant(secret, threshold, rng);
    let shares = (1..=n).map(|i| (i, poly.eval_at_index(i))).collect();
    (poly, shares)
}

/// Reconstructs a Shamir secret from `(index, share)` pairs.
pub fn shamir_reconstruct(shares: &[(usize, Scalar)]) -> Scalar {
    let points: Vec<(Scalar, Scalar)> =
        shares.iter().map(|(i, s)| (Scalar::from_u64(*i as u64), *s)).collect();
    interpolate_at_zero(&points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn eval_simple_polynomial() {
        // P(x) = 3 + 2x + x^2
        let p = Polynomial::new(vec![Scalar::from_u64(3), Scalar::from_u64(2), Scalar::from_u64(1)]);
        assert_eq!(p.eval(Scalar::zero()), Scalar::from_u64(3));
        assert_eq!(p.eval(Scalar::from_u64(1)), Scalar::from_u64(6));
        assert_eq!(p.eval(Scalar::from_u64(2)), Scalar::from_u64(11));
        assert_eq!(p.degree(), 2);
        assert_eq!(p.constant(), Scalar::from_u64(3));
    }

    #[test]
    fn interpolation_recovers_polynomial() {
        let mut rng = StdRng::seed_from_u64(7);
        let p = Polynomial::random(4, &mut rng);
        let points: Vec<(Scalar, Scalar)> =
            (1..=5u64).map(|i| (Scalar::from_u64(i), p.eval(Scalar::from_u64(i)))).collect();
        assert_eq!(interpolate_at_zero(&points), p.constant());
        assert_eq!(interpolate_at(&points, Scalar::from_u64(9)), p.eval(Scalar::from_u64(9)));
    }

    #[test]
    fn shamir_roundtrip_with_any_quorum() {
        let mut rng = StdRng::seed_from_u64(3);
        let secret = Scalar::from_u64(424242);
        let (_, shares) = shamir_share(secret, 2, 7, &mut rng);
        // Any 3 shares reconstruct.
        assert_eq!(shamir_reconstruct(&shares[0..3]), secret);
        assert_eq!(shamir_reconstruct(&shares[2..5]), secret);
        assert_eq!(shamir_reconstruct(&[shares[0], shares[3], shares[6]]), secret);
        // 2 shares give a different (wrong) value with overwhelming probability.
        assert_ne!(shamir_reconstruct(&shares[0..2]), secret);
    }

    #[test]
    fn polynomial_addition() {
        let p = Polynomial::new(vec![Scalar::from_u64(1), Scalar::from_u64(2)]);
        let q = Polynomial::new(vec![Scalar::from_u64(5), Scalar::from_u64(0), Scalar::from_u64(3)]);
        let r = p.add(&q);
        assert_eq!(r.eval(Scalar::from_u64(2)), p.eval(Scalar::from_u64(2)) + q.eval(Scalar::from_u64(2)));
    }

    #[test]
    #[should_panic(expected = "at least one coefficient")]
    fn empty_polynomial_panics() {
        Polynomial::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "duplicate interpolation points")]
    fn duplicate_points_panic() {
        let pts = vec![(Scalar::from_u64(1), Scalar::from_u64(1)), (Scalar::from_u64(1), Scalar::from_u64(2))];
        interpolate_at_zero(&pts);
    }

    #[test]
    fn table_coefficients_match_pointwise_formula() {
        let xs: Vec<Scalar> = [1u64, 3, 4, 7, 9].iter().map(|v| Scalar::from_u64(*v)).collect();
        let table = LagrangeTable::new(xs.clone());
        for x in [0u64, 2, 5, 100] {
            let x = Scalar::from_u64(x);
            let coeffs = table.coefficients_at(x);
            for (j, c) in coeffs.iter().enumerate() {
                assert_eq!(*c, lagrange_coefficient(&xs, j, x), "x = {x}, j = {j}");
            }
        }
    }

    #[test]
    fn table_coefficients_at_an_interpolation_point_are_indicators() {
        let table = share_point_table(5);
        let coeffs = table.coefficients_at(Scalar::from_u64(3));
        for (j, c) in coeffs.iter().enumerate() {
            let expected = if j == 2 { Scalar::one() } else { Scalar::zero() };
            assert_eq!(*c, expected);
        }
    }

    #[test]
    fn cached_tables_are_shared() {
        let xs: Vec<Scalar> = [11u64, 13, 17].iter().map(|v| Scalar::from_u64(*v)).collect();
        let a = lagrange_table(&xs);
        let b = lagrange_table(&xs);
        assert!(Arc::ptr_eq(&a, &b), "the second lookup must hit the cache");
    }

    #[test]
    fn batch_invert_matches_individual_inversion() {
        let mut vals: Vec<Scalar> = [2u64, 3, 5, 7, 11].iter().map(|v| Scalar::from_u64(*v)).collect();
        let expected: Vec<Scalar> = vals.iter().map(|v| v.invert()).collect();
        Scalar::batch_invert(&mut vals);
        assert_eq!(vals, expected);
        let mut empty: Vec<Scalar> = vec![];
        Scalar::batch_invert(&mut empty);
        let mut single = [Scalar::from_u64(9)];
        Scalar::batch_invert(&mut single);
        assert_eq!(single[0], Scalar::from_u64(9).invert());
    }

    proptest! {
        #[test]
        fn prop_shamir_reconstructs(secret in any::<u64>(), seed in any::<u64>(), t in 1usize..5, extra in 1usize..5) {
            let mut rng = StdRng::seed_from_u64(seed);
            let secret = Scalar::from_u64(secret);
            let n = t + extra;
            let (_, shares) = shamir_share(secret, t, n, &mut rng);
            prop_assert_eq!(shamir_reconstruct(&shares[..t + 1]), secret);
            prop_assert_eq!(shamir_reconstruct(&shares[extra.saturating_sub(1)..]), secret);
        }

        #[test]
        fn prop_interpolate_identity(seed in any::<u64>(), deg in 0usize..6) {
            let mut rng = StdRng::seed_from_u64(seed);
            let p = Polynomial::random(deg, &mut rng);
            let points: Vec<(Scalar, Scalar)> = (1..=deg as u64 + 1)
                .map(|i| (Scalar::from_u64(i), p.eval(Scalar::from_u64(i))))
                .collect();
            let x = Scalar::from_u64(seed % 1000 + 100);
            prop_assert_eq!(interpolate_at(&points, x), p.eval(x));
        }
    }
}
