//! Polynomials over the scalar field, Shamir secret sharing, and Lagrange
//! interpolation.
//!
//! These are the arithmetic backbone of the AVSS (Alg 1/2) and of the
//! aggregatable PVSS (Appendix B): secrets are constant terms of random
//! polynomials of degree at most `f` (resp. `t`), shares are evaluations at
//! party-specific points, and reconstruction is Lagrange interpolation at 0.

use rand::Rng;

use crate::scalar::Scalar;

/// A polynomial with scalar coefficients, lowest degree first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Polynomial {
    coeffs: Vec<Scalar>,
}

impl Polynomial {
    /// Creates a polynomial from coefficients (constant term first).
    ///
    /// # Panics
    ///
    /// Panics if `coeffs` is empty.
    pub fn new(coeffs: Vec<Scalar>) -> Self {
        assert!(!coeffs.is_empty(), "a polynomial needs at least one coefficient");
        Polynomial { coeffs }
    }

    /// Samples a uniformly random polynomial of the given degree with the
    /// prescribed constant term (the shared secret).
    pub fn random_with_constant<R: Rng + ?Sized>(constant: Scalar, degree: usize, rng: &mut R) -> Self {
        let mut coeffs = Vec::with_capacity(degree + 1);
        coeffs.push(constant);
        for _ in 0..degree {
            coeffs.push(Scalar::random(rng));
        }
        Polynomial { coeffs }
    }

    /// Samples a uniformly random polynomial of the given degree.
    pub fn random<R: Rng + ?Sized>(degree: usize, rng: &mut R) -> Self {
        Self::random_with_constant(Scalar::random(rng), degree, rng)
    }

    /// Degree of the polynomial (number of coefficients minus one).
    pub fn degree(&self) -> usize {
        self.coeffs.len() - 1
    }

    /// The coefficients, constant term first.
    pub fn coeffs(&self) -> &[Scalar] {
        &self.coeffs
    }

    /// The constant term `P(0)`.
    pub fn constant(&self) -> Scalar {
        self.coeffs[0]
    }

    /// Evaluates the polynomial at `x` by Horner's rule.
    pub fn eval(&self, x: Scalar) -> Scalar {
        let mut acc = Scalar::zero();
        for c in self.coeffs.iter().rev() {
            acc = acc * x + *c;
        }
        acc
    }

    /// Evaluates the polynomial at the canonical share point of party `i`
    /// (1-based point `i + 1` is *not* used; the convention throughout the
    /// workspace is point `x = i` for party index `i ≥ 1`).
    pub fn eval_at_index(&self, i: usize) -> Scalar {
        self.eval(Scalar::from_u64(i as u64))
    }

    /// Adds two polynomials coefficient-wise.
    pub fn add(&self, other: &Polynomial) -> Polynomial {
        let len = self.coeffs.len().max(other.coeffs.len());
        let mut coeffs = Vec::with_capacity(len);
        for i in 0..len {
            let a = self.coeffs.get(i).copied().unwrap_or_else(Scalar::zero);
            let b = other.coeffs.get(i).copied().unwrap_or_else(Scalar::zero);
            coeffs.push(a + b);
        }
        Polynomial { coeffs }
    }
}

/// Lagrange coefficient `ℓ_j(x)` for the interpolation point set `xs`
/// evaluated at `x`.
///
/// # Panics
///
/// Panics if `xs` contains duplicate points.
pub fn lagrange_coefficient(xs: &[Scalar], j: usize, x: Scalar) -> Scalar {
    let xj = xs[j];
    let mut num = Scalar::one();
    let mut den = Scalar::one();
    for (m, &xm) in xs.iter().enumerate() {
        if m == j {
            continue;
        }
        assert!(xm != xj, "duplicate interpolation points");
        num *= x - xm;
        den *= xj - xm;
    }
    num * den.invert()
}

/// Interpolates the unique polynomial through `points` and evaluates it at
/// `x`.  `points` are `(x_i, y_i)` pairs with distinct `x_i`.
///
/// # Panics
///
/// Panics if `points` is empty or contains duplicate x-coordinates.
pub fn interpolate_at(points: &[(Scalar, Scalar)], x: Scalar) -> Scalar {
    assert!(!points.is_empty(), "interpolation requires at least one point");
    let xs: Vec<Scalar> = points.iter().map(|(xi, _)| *xi).collect();
    let mut acc = Scalar::zero();
    for (j, (_, yj)) in points.iter().enumerate() {
        acc += *yj * lagrange_coefficient(&xs, j, x);
    }
    acc
}

/// Interpolates at zero — the common "reconstruct the secret" operation.
pub fn interpolate_at_zero(points: &[(Scalar, Scalar)]) -> Scalar {
    interpolate_at(points, Scalar::zero())
}

/// Produces Shamir shares `(i, P(i))` for parties `1..=n` of a fresh random
/// polynomial with constant term `secret` and degree `threshold`.
///
/// Any `threshold + 1` shares reconstruct the secret; `threshold` shares
/// reveal nothing (information-theoretically).
pub fn shamir_share<R: Rng + ?Sized>(
    secret: Scalar,
    threshold: usize,
    n: usize,
    rng: &mut R,
) -> (Polynomial, Vec<(usize, Scalar)>) {
    let poly = Polynomial::random_with_constant(secret, threshold, rng);
    let shares = (1..=n).map(|i| (i, poly.eval_at_index(i))).collect();
    (poly, shares)
}

/// Reconstructs a Shamir secret from `(index, share)` pairs.
pub fn shamir_reconstruct(shares: &[(usize, Scalar)]) -> Scalar {
    let points: Vec<(Scalar, Scalar)> =
        shares.iter().map(|(i, s)| (Scalar::from_u64(*i as u64), *s)).collect();
    interpolate_at_zero(&points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn eval_simple_polynomial() {
        // P(x) = 3 + 2x + x^2
        let p = Polynomial::new(vec![Scalar::from_u64(3), Scalar::from_u64(2), Scalar::from_u64(1)]);
        assert_eq!(p.eval(Scalar::zero()), Scalar::from_u64(3));
        assert_eq!(p.eval(Scalar::from_u64(1)), Scalar::from_u64(6));
        assert_eq!(p.eval(Scalar::from_u64(2)), Scalar::from_u64(11));
        assert_eq!(p.degree(), 2);
        assert_eq!(p.constant(), Scalar::from_u64(3));
    }

    #[test]
    fn interpolation_recovers_polynomial() {
        let mut rng = StdRng::seed_from_u64(7);
        let p = Polynomial::random(4, &mut rng);
        let points: Vec<(Scalar, Scalar)> =
            (1..=5u64).map(|i| (Scalar::from_u64(i), p.eval(Scalar::from_u64(i)))).collect();
        assert_eq!(interpolate_at_zero(&points), p.constant());
        assert_eq!(interpolate_at(&points, Scalar::from_u64(9)), p.eval(Scalar::from_u64(9)));
    }

    #[test]
    fn shamir_roundtrip_with_any_quorum() {
        let mut rng = StdRng::seed_from_u64(3);
        let secret = Scalar::from_u64(424242);
        let (_, shares) = shamir_share(secret, 2, 7, &mut rng);
        // Any 3 shares reconstruct.
        assert_eq!(shamir_reconstruct(&shares[0..3]), secret);
        assert_eq!(shamir_reconstruct(&shares[2..5]), secret);
        assert_eq!(shamir_reconstruct(&[shares[0], shares[3], shares[6]]), secret);
        // 2 shares give a different (wrong) value with overwhelming probability.
        assert_ne!(shamir_reconstruct(&shares[0..2]), secret);
    }

    #[test]
    fn polynomial_addition() {
        let p = Polynomial::new(vec![Scalar::from_u64(1), Scalar::from_u64(2)]);
        let q = Polynomial::new(vec![Scalar::from_u64(5), Scalar::from_u64(0), Scalar::from_u64(3)]);
        let r = p.add(&q);
        assert_eq!(r.eval(Scalar::from_u64(2)), p.eval(Scalar::from_u64(2)) + q.eval(Scalar::from_u64(2)));
    }

    #[test]
    #[should_panic(expected = "at least one coefficient")]
    fn empty_polynomial_panics() {
        Polynomial::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "duplicate interpolation points")]
    fn duplicate_points_panic() {
        let pts = vec![(Scalar::from_u64(1), Scalar::from_u64(1)), (Scalar::from_u64(1), Scalar::from_u64(2))];
        interpolate_at_zero(&pts);
    }

    proptest! {
        #[test]
        fn prop_shamir_reconstructs(secret in any::<u64>(), seed in any::<u64>(), t in 1usize..5, extra in 1usize..5) {
            let mut rng = StdRng::seed_from_u64(seed);
            let secret = Scalar::from_u64(secret);
            let n = t + extra;
            let (_, shares) = shamir_share(secret, t, n, &mut rng);
            prop_assert_eq!(shamir_reconstruct(&shares[..t + 1]), secret);
            prop_assert_eq!(shamir_reconstruct(&shares[extra.saturating_sub(1)..]), secret);
        }

        #[test]
        fn prop_interpolate_identity(seed in any::<u64>(), deg in 0usize..6) {
            let mut rng = StdRng::seed_from_u64(seed);
            let p = Polynomial::random(deg, &mut rng);
            let points: Vec<(Scalar, Scalar)> = (1..=deg as u64 + 1)
                .map(|i| (Scalar::from_u64(i), p.eval(Scalar::from_u64(i))))
                .collect();
            let x = Scalar::from_u64(seed % 1000 + 100);
            prop_assert_eq!(interpolate_at(&points, x), p.eval(x));
        }
    }
}
