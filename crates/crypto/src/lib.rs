//! Cryptographic substrate for the `setupfree` workspace, implemented from
//! scratch (no external cryptography crates).
//!
//! The paper ("Efficient Asynchronous Byzantine Agreement without Private
//! Setups", Gao et al., ICDCS 2022) builds its protocols out of five
//! cryptographic ingredients, all provided here:
//!
//! * a collision-resistant hash / random oracle — [`hash`] (SHA-256),
//! * EUF-CMA digital signatures registered at a bulletin PKI — [`sig`],
//! * Pedersen polynomial commitments over a discrete-log group —
//!   [`group`], [`pedersen`], [`poly`],
//! * a verifiable random function with unpredictability under malicious key
//!   generation — [`vrf`],
//! * an aggregatable PVSS over a bilinear group — [`pairing`], [`pvss`].
//!
//! All discrete-log hot paths route through the exponentiation engine in
//! [`multiexp`] (Pippenger multi-exponentiation, fixed-base comb tables for
//! the two generators, Shamir double exponentiation), and repeated Lagrange
//! interpolations reuse the cached coefficient tables of [`poly`].  PVSS
//! transcripts can be verified in bulk via
//! [`pvss::verify_single_dealer_batch`] (random-linear-combination batching
//! with a per-transcript fallback); see `ARCHITECTURE.md` §"Crypto hot-path
//! engine" for the algorithm choices.
//!
//! See `DESIGN.md` §2 for the documented substitutions (toy-sized but real
//! discrete-log group; simulated pairing for the PVSS).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod group;
pub mod hash;
pub mod keyring;
pub mod modarith;
pub mod multiexp;
pub mod pairing;
pub mod params;
pub mod pedersen;
pub mod poly;
pub mod pvss;
pub mod scalar;
pub mod sig;
pub mod vrf;

pub use group::GroupElement;
pub use hash::{sha256, Digest};
pub use keyring::{generate_pki, generate_pki_with_malicious, Keyring, PartyPublic, PartySecrets};
pub use pedersen::PedersenCommitment;
pub use poly::Polynomial;
pub use pvss::{PvssParams, PvssScript, PvssSecret, PvssShare};
pub use scalar::Scalar;
pub use sig::{AggregateError, AggregateSignature, QuorumCert, Signature, SigningKey, VerifyingKey};
pub use vrf::{VrfOutput, VrfProof, VrfPublicKey, VrfSecretKey};
