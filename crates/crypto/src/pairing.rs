//! Simulated bilinear group used by the aggregatable PVSS (Appendix B).
//!
//! The paper instantiates Gurkan et al.'s aggregatable PVSS over a
//! pairing-friendly curve under the SXDH assumption.  Reproducing the
//! *protocol behaviour* (verification equations, aggregation, share
//! reconstruction, complexity) does not require computational hardness, so —
//! per the substitution policy in DESIGN.md §2 — this module provides a
//! **functionally exact but non-hiding** bilinear group: `G1`, `G2` and `Gt`
//! are sealed wrappers around the discrete log of the element with respect to
//! the fixed generators, the group law is addition of exponents, and the
//! pairing is multiplication of exponents.  Bilinearity
//! `e(g1^a, g2^b) = gt^{ab}` holds *exactly*, so every pairing equation in
//! the PVSS code is the same code a real pairing engine would run.
//!
//! The wrappers are deliberately opaque (no public accessor for the exponent)
//! so protocol code cannot accidentally "cheat"; only this module and the
//! serialization layer can see the representation.

use std::fmt;
use std::ops::Mul;

use setupfree_wire::{Decode, Encode, Reader, WireError, Writer};

use crate::scalar::Scalar;

/// Serialized size of a simulated group element.  Padded to 32 bytes so that
/// communication measurements reflect realistic pairing-group element sizes
/// (BLS12-381 G1 is 48 bytes; we use the hash length λ = 32 bytes).
pub const SIM_ELEMENT_LEN: usize = 32;

macro_rules! sim_group {
    ($name:ident, $doc:expr) => {
        #[doc = $doc]
        #[derive(Clone, Copy, PartialEq, Eq, Hash)]
        pub struct $name(Scalar);

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "(exp={})"), self.0)
            }
        }

        impl $name {
            /// The group identity.
            pub fn identity() -> Self {
                $name(Scalar::zero())
            }

            /// The fixed generator.
            pub fn generator() -> Self {
                $name(Scalar::one())
            }

            /// `generator^e` — the standard way to build elements.
            pub fn generator_pow(e: Scalar) -> Self {
                $name(e)
            }

            /// Group exponentiation `self^e`.
            pub fn pow(self, e: Scalar) -> Self {
                $name(self.0 * e)
            }

            /// Group inverse.
            pub fn inverse(self) -> Self {
                $name(self.0.negate())
            }

            /// Returns `true` for the identity element.
            pub fn is_identity(self) -> bool {
                self.0.is_zero()
            }

            /// Simultaneous multi-exponentiation `∏ elems[i]^{exps[i]}`.
            ///
            /// In the simulated group this is the inner product of the
            /// stored discrete logs with the exponent vector — the same
            /// operation a Pippenger engine would perform over a real curve,
            /// at the cost model of the simulation.
            ///
            /// # Panics
            ///
            /// Panics if the slices have different lengths.
            pub fn multi_exp(elems: &[$name], exps: &[Scalar]) -> $name {
                assert_eq!(
                    elems.len(),
                    exps.len(),
                    "multi_exp requires equal-length inputs"
                );
                $name(
                    elems
                        .iter()
                        .zip(exps.iter())
                        .fold(Scalar::zero(), |acc, (g, e)| acc + g.0 * *e),
                )
            }
        }

        impl Mul for $name {
            type Output = $name;
            // The simulated group element stores its discrete log, so the
            // group operation really is exponent addition.
            #[allow(clippy::suspicious_arithmetic_impl)]
            fn mul(self, rhs: $name) -> $name {
                $name(self.0 + rhs.0)
            }
        }

        impl Encode for $name {
            fn encode(&self, w: &mut Writer) {
                let mut bytes = [0u8; SIM_ELEMENT_LEN];
                bytes[..8].copy_from_slice(&self.0.to_bytes());
                w.write_bytes(&bytes);
            }
        }

        impl Decode for $name {
            fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
                let bytes: [u8; SIM_ELEMENT_LEN] = <[u8; SIM_ELEMENT_LEN]>::decode(r)?;
                if bytes[8..].iter().any(|b| *b != 0) {
                    return Err(WireError::InvalidValue { ty: stringify!($name) });
                }
                let mut head = [0u8; 8];
                head.copy_from_slice(&bytes[..8]);
                let exp = Scalar::from_bytes(head)
                    .ok_or(WireError::InvalidValue { ty: stringify!($name) })?;
                Ok($name(exp))
            }
        }
    };
}

sim_group!(G1, "An element of the simulated source group G1.");
sim_group!(G2, "An element of the simulated source group G2.");
sim_group!(Gt, "An element of the simulated target group Gt.");

/// The bilinear pairing `e : G1 × G2 → Gt`.
///
/// Satisfies `e(a^x, b^y) = e(a, b)^{xy}` exactly.
pub fn pairing(a: G1, b: G2) -> Gt {
    Gt(a.0 * b.0)
}

/// Multi-pairing product `∏ e(a_i, b_i)`.
pub fn multi_pairing(pairs: &[(G1, G2)]) -> Gt {
    pairs.iter().fold(Gt::identity(), |acc, (a, b)| acc * pairing(*a, *b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn s(v: u64) -> Scalar {
        Scalar::from_u64(v)
    }

    #[test]
    fn bilinearity() {
        let a = s(11);
        let b = s(13);
        let lhs = pairing(G1::generator_pow(a), G2::generator_pow(b));
        let rhs = pairing(G1::generator(), G2::generator()).pow(a * b);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn pairing_is_non_degenerate() {
        let e = pairing(G1::generator(), G2::generator());
        assert!(!e.is_identity());
    }

    #[test]
    fn pairing_linear_in_each_argument() {
        let x = G1::generator_pow(s(3));
        let y = G1::generator_pow(s(5));
        let z = G2::generator_pow(s(7));
        assert_eq!(pairing(x * y, z), pairing(x, z) * pairing(y, z));
        let w = G2::generator_pow(s(11));
        assert_eq!(pairing(x, z * w), pairing(x, z) * pairing(x, w));
    }

    #[test]
    fn group_laws() {
        let a = G1::generator_pow(s(4));
        assert_eq!(a * a.inverse(), G1::identity());
        assert_eq!(a * G1::identity(), a);
        assert_eq!(a.pow(s(3)), a * a * a);
    }

    #[test]
    fn wire_roundtrip_and_padding_enforced() {
        let a = G2::generator_pow(s(99));
        let bytes = setupfree_wire::to_bytes(&a);
        assert_eq!(bytes.len(), SIM_ELEMENT_LEN);
        assert_eq!(setupfree_wire::from_bytes::<G2>(&bytes).unwrap(), a);
        let mut bad = bytes.clone();
        bad[20] = 1;
        assert!(setupfree_wire::from_bytes::<G2>(&bad).is_err());
    }

    #[test]
    fn multi_pairing_matches_product() {
        let pairs = vec![
            (G1::generator_pow(s(2)), G2::generator_pow(s(3))),
            (G1::generator_pow(s(5)), G2::generator_pow(s(7))),
        ];
        let expected = pairing(pairs[0].0, pairs[0].1) * pairing(pairs[1].0, pairs[1].1);
        assert_eq!(multi_pairing(&pairs), expected);
    }

    proptest! {
        #[test]
        fn prop_bilinearity(a in any::<u64>(), b in any::<u64>()) {
            let a = Scalar::from_u64(a);
            let b = Scalar::from_u64(b);
            prop_assert_eq!(
                pairing(G1::generator_pow(a), G2::generator_pow(b)),
                Gt::generator_pow(a * b)
            );
        }
    }
}
