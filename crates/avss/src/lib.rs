//! Asynchronous verifiable secret sharing without private setups
//! (paper §5.1, Algorithms 1 and 2).
//!
//! The dealer commits to an encryption key with a Pedersen polynomial
//! commitment, collects `n − f` signatures on the commitment (so at least
//! `f + 1` honest parties hold consistent key shares), then reliably
//! broadcasts the ciphertext of its actual secret using a Bracha-style
//! `Echo`/`Ready` pattern gated on the signature quorum.  Reconstruction
//! recovers the key from any `f + 1` consistent shares and amplifies it to
//! everyone.
//!
//! Properties (Definition 1): totality, commitment, correctness, secrecy —
//! exercised by the unit tests below and the cross-crate integration tests.
//!
//! The sharing phase costs `O(n²)` messages and `O(λn²)` bits; the
//! reconstruction phase the same.  This is the key ingredient that lets the
//! Coin protocol (Alg 4) stay within `O(λn³)` bits overall.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use setupfree_crypto::hash::{sha256, stream_xor, Digest};
use setupfree_crypto::pedersen::PedersenCommitment;
use setupfree_crypto::poly::{interpolate_at_zero, Polynomial};
use setupfree_crypto::scalar::Scalar;
use setupfree_crypto::sig::{QuorumCert, Signature};
use setupfree_crypto::{Keyring, PartySecrets};
use setupfree_net::{PartyId, ProtocolInstance, Sid, Step};
use setupfree_wire::{Decode, Encode, Reader, WireError, Writer};

const CIPHER_DOMAIN: &str = "setupfree/avss/cipher";

/// Messages of one AVSS instance (both phases).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AvssMessage {
    /// Dealer → party: polynomial commitment and this party's key shares
    /// (Alg 1 line 6).
    KeyShare {
        /// Pedersen commitment to the key polynomial pair.
        commitment: PedersenCommitment,
        /// `A(i)` for the receiving party.
        share_a: Scalar,
        /// `B(i)` for the receiving party.
        share_b: Scalar,
    },
    /// Party → dealer: signature acknowledging the commitment (line 15).
    KeyStored {
        /// Signature over the commitment under the session identifier.
        signature: Signature,
    },
    /// Dealer → all: ciphertext, commitment and the signature quorum
    /// (line 10).
    Cipher {
        /// Aggregated certificate of `n − f` distinct signatures on the
        /// commitment (one multi-signature instead of `n − f` sig pairs).
        quorum: QuorumCert,
        /// The commitment the quorum signed.
        commitment: PedersenCommitment,
        /// Encryption of the dealer's secret under the committed key.
        cipher: Vec<u8>,
    },
    /// Bracha-style echo of the ciphertext (line 20).
    Echo {
        /// The echoed ciphertext.
        cipher: Vec<u8>,
    },
    /// Bracha-style ready for the ciphertext (lines 22/24).
    Ready {
        /// The committed ciphertext.
        cipher: Vec<u8>,
    },
    /// Reconstruction: a party's key shares (Alg 2 line 3).
    KeyRec {
        /// `A(j)` of the sending party.
        share_a: Scalar,
        /// `B(j)` of the sending party.
        share_b: Scalar,
    },
    /// Reconstruction: the recovered key, amplified to everyone (line 11).
    Key {
        /// The reconstructed encryption key `A(0)`.
        key: Scalar,
    },
}

impl Encode for AvssMessage {
    fn encode(&self, w: &mut Writer) {
        match self {
            AvssMessage::KeyShare { commitment, share_a, share_b } => {
                w.write_u8(0);
                commitment.encode(w);
                share_a.encode(w);
                share_b.encode(w);
            }
            AvssMessage::KeyStored { signature } => {
                w.write_u8(1);
                signature.encode(w);
            }
            AvssMessage::Cipher { quorum, commitment, cipher } => {
                w.write_u8(2);
                quorum.encode(w);
                commitment.encode(w);
                cipher.encode(w);
            }
            AvssMessage::Echo { cipher } => {
                w.write_u8(3);
                cipher.encode(w);
            }
            AvssMessage::Ready { cipher } => {
                w.write_u8(4);
                cipher.encode(w);
            }
            AvssMessage::KeyRec { share_a, share_b } => {
                w.write_u8(5);
                share_a.encode(w);
                share_b.encode(w);
            }
            AvssMessage::Key { key } => {
                w.write_u8(6);
                key.encode(w);
            }
        }
    }
}

impl Decode for AvssMessage {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.read_u8()? {
            0 => Ok(AvssMessage::KeyShare {
                commitment: PedersenCommitment::decode(r)?,
                share_a: Scalar::decode(r)?,
                share_b: Scalar::decode(r)?,
            }),
            1 => Ok(AvssMessage::KeyStored { signature: Signature::decode(r)? }),
            2 => Ok(AvssMessage::Cipher {
                quorum: QuorumCert::decode(r)?,
                commitment: PedersenCommitment::decode(r)?,
                cipher: Vec::<u8>::decode(r)?,
            }),
            3 => Ok(AvssMessage::Echo { cipher: Vec::<u8>::decode(r)? }),
            4 => Ok(AvssMessage::Ready { cipher: Vec::<u8>::decode(r)? }),
            5 => Ok(AvssMessage::KeyRec { share_a: Scalar::decode(r)?, share_b: Scalar::decode(r)? }),
            6 => Ok(AvssMessage::Key { key: Scalar::decode(r)? }),
            tag => Err(WireError::InvalidTag { tag: u64::from(tag), ty: "AvssMessage" }),
        }
    }
}

/// Output of the sharing phase (Alg 1 line 26): the ciphertext plus this
/// party's (possibly missing) key shares and commitment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AvssShareOutput {
    /// The committed ciphertext.
    pub cipher: Vec<u8>,
    /// `A(i)` if this party received a valid `KeyShare`.
    pub share_a: Option<Scalar>,
    /// `B(i)` if this party received a valid `KeyShare`.
    pub share_b: Option<Scalar>,
    /// The commitment, if received with a valid quorum.
    pub commitment: Option<PedersenCommitment>,
}

/// Dealer-side sharing state.
#[derive(Debug)]
struct DealerState {
    secret: Vec<u8>,
    poly_a: Polynomial,
    poly_b: Polynomial,
    commitment: PedersenCommitment,
    signatures: Vec<(PartyId, Signature)>,
    signed_by: BTreeSet<usize>,
    cipher_sent: bool,
}

/// A validated-but-not-yet-deliverable ciphertext: the quorum certificate,
/// the Pedersen commitment and the encrypted share vector (Alg 1 line 15).
type PendingCipher = (QuorumCert, PedersenCommitment, Vec<u8>);

/// One party's state machine for a single AVSS instance (both phases).
#[derive(Debug)]
pub struct Avss {
    sid: Sid,
    me: PartyId,
    dealer: PartyId,
    keyring: Arc<Keyring>,
    secrets: Arc<PartySecrets>,
    dealer_state: Option<DealerState>,
    // --- receiving side, sharing phase ---
    recorded_commitment: Option<PedersenCommitment>,
    recorded_share_a: Option<Scalar>,
    recorded_share_b: Option<Scalar>,
    /// Commitment + shares accepted after quorum validation (Alg 1 line 19).
    locked: bool,
    pending_cipher: Option<PendingCipher>,
    echo_sent: bool,
    ready_sent: bool,
    echoes: BTreeMap<Digest, (BTreeSet<usize>, Vec<u8>)>,
    readies: BTreeMap<Digest, (BTreeSet<usize>, Vec<u8>)>,
    share_output: Option<AvssShareOutput>,
    // --- reconstruction phase ---
    rec_activated: bool,
    rec_buffer: Vec<(PartyId, AvssMessage)>,
    key_rec_seen: BTreeSet<usize>,
    /// Arrived-but-unverified key shares `(point, A(point), B(point))`; they
    /// are batch-verified against the commitment in one RLC check as soon as
    /// the threshold is reachable.
    key_rec_pending: Vec<(usize, Scalar, Scalar)>,
    key_rec_shares: Vec<(usize, Scalar)>,
    key_sent: bool,
    key_votes: BTreeMap<u64, BTreeSet<usize>>,
    reconstructed: Option<Vec<u8>>,
}

impl Avss {
    /// Creates the state machine for party `me` in the AVSS instance `sid`
    /// with the given `dealer`.  `dealer_secret` must be `Some` iff
    /// `me == dealer`.
    pub fn new(
        sid: Sid,
        me: PartyId,
        dealer: PartyId,
        keyring: Arc<Keyring>,
        secrets: Arc<PartySecrets>,
        dealer_secret: Option<Vec<u8>>,
    ) -> Self {
        let dealer_state = if me == dealer {
            let secret = dealer_secret.expect("the dealer must provide a secret");
            Some(Self::make_dealer_state(&keyring, secret, &sid, &secrets))
        } else {
            None
        };
        Avss {
            sid,
            me,
            dealer,
            keyring,
            secrets,
            dealer_state,
            recorded_commitment: None,
            recorded_share_a: None,
            recorded_share_b: None,
            locked: false,
            pending_cipher: None,
            echo_sent: false,
            ready_sent: false,
            echoes: BTreeMap::new(),
            readies: BTreeMap::new(),
            share_output: None,
            rec_activated: false,
            rec_buffer: Vec::new(),
            key_rec_seen: BTreeSet::new(),
            key_rec_pending: Vec::new(),
            key_rec_shares: Vec::new(),
            key_sent: false,
            key_votes: BTreeMap::new(),
            reconstructed: None,
        }
    }

    fn make_dealer_state(
        keyring: &Keyring,
        secret: Vec<u8>,
        sid: &Sid,
        secrets: &PartySecrets,
    ) -> DealerState {
        // Derandomized polynomial sampling keyed by the dealer's signing key
        // and the session id keeps the whole protocol deterministic per seed
        // while remaining unpredictable to other parties.
        let mut seed_bytes = Vec::new();
        seed_bytes.extend_from_slice(sid.as_bytes());
        seed_bytes.extend_from_slice(&secret);
        seed_bytes.extend_from_slice(&secrets.index.to_le_bytes());
        let seed = u64::from_le_bytes(sha256(&seed_bytes)[..8].try_into().expect("8 bytes"));
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        use rand::SeedableRng;
        let f = keyring.f();
        let poly_a = Polynomial::random(f, &mut rng);
        let poly_b = Polynomial::random(f, &mut rng);
        let commitment = PedersenCommitment::commit(&poly_a, &poly_b);
        DealerState {
            secret,
            poly_a,
            poly_b,
            commitment,
            signatures: Vec::new(),
            signed_by: BTreeSet::new(),
            cipher_sent: false,
        }
    }

    /// The dealer of this instance.
    pub fn dealer(&self) -> PartyId {
        self.dealer
    }

    /// Output of the sharing phase, if complete.
    pub fn sharing_output(&self) -> Option<&AvssShareOutput> {
        self.share_output.as_ref()
    }

    /// The reconstructed secret, if reconstruction has completed.
    pub fn reconstructed(&self) -> Option<&[u8]> {
        self.reconstructed.as_deref()
    }

    fn n(&self) -> usize {
        self.keyring.n()
    }

    fn f(&self) -> usize {
        self.keyring.f()
    }

    fn quorum(&self) -> usize {
        self.keyring.quorum()
    }

    fn sig_context(&self) -> Vec<u8> {
        let mut ctx = self.sid.as_bytes().to_vec();
        ctx.extend_from_slice(b"/avss/keystored");
        ctx
    }

    fn encrypt(&self, key: Scalar, plaintext: &[u8]) -> Vec<u8> {
        let mut k = key.to_bytes().to_vec();
        k.extend_from_slice(self.sid.as_bytes());
        stream_xor(CIPHER_DOMAIN, &k, plaintext)
    }

    /// Activates the instance: the dealer distributes key shares (Alg 1
    /// lines 1–6); other parties do nothing until messages arrive.
    pub fn activate(&mut self) -> Step<AvssMessage> {
        let mut step = Step::none();
        if let Some(ds) = &self.dealer_state {
            for i in 0..self.n() {
                let point = i + 1;
                step.push_send(
                    PartyId(i),
                    AvssMessage::KeyShare {
                        commitment: ds.commitment.clone(),
                        share_a: ds.poly_a.eval_at_index(point),
                        share_b: ds.poly_b.eval_at_index(point),
                    },
                );
            }
        }
        step
    }

    /// Handles a delivered message.
    pub fn handle(&mut self, from: PartyId, msg: AvssMessage) -> Step<AvssMessage> {
        if from.index() >= self.n() {
            return Step::none();
        }
        match msg {
            AvssMessage::KeyShare { commitment, share_a, share_b } => {
                self.on_key_share(from, commitment, share_a, share_b)
            }
            AvssMessage::KeyStored { signature } => self.on_key_stored(from, signature),
            AvssMessage::Cipher { quorum, commitment, cipher } => {
                self.on_cipher(from, quorum, commitment, cipher)
            }
            AvssMessage::Echo { cipher } => self.on_echo(from, cipher),
            AvssMessage::Ready { cipher } => self.on_ready(from, cipher),
            msg @ (AvssMessage::KeyRec { .. } | AvssMessage::Key { .. }) => {
                if self.rec_activated {
                    self.handle_rec(from, msg)
                } else {
                    // Buffer reconstruction traffic until this party activates
                    // the reconstruction phase (secrecy: it must not help
                    // reconstruct before being asked to).
                    self.rec_buffer.push((from, msg));
                    Step::none()
                }
            }
        }
    }

    fn on_key_share(
        &mut self,
        from: PartyId,
        commitment: PedersenCommitment,
        share_a: Scalar,
        share_b: Scalar,
    ) -> Step<AvssMessage> {
        // Only the dealer's first KeyShare counts (Alg 1 line 12).
        if from != self.dealer || self.recorded_commitment.is_some() {
            return Step::none();
        }
        let point = self.me.index() + 1;
        if !commitment.verify_share(point, share_a, share_b) || commitment.degree() != self.f() {
            return Step::none();
        }
        self.recorded_commitment = Some(commitment.clone());
        self.recorded_share_a = Some(share_a);
        self.recorded_share_b = Some(share_b);
        let signature =
            self.secrets.sig.sign(&self.sig_context(), &setupfree_wire::to_bytes(&commitment));
        let mut step = Step::send(self.dealer, AvssMessage::KeyStored { signature });
        // A Cipher that arrived before the KeyShare can now be validated.
        if let Some((quorum, cmt, cipher)) = self.pending_cipher.take() {
            step.extend(self.try_accept_cipher(quorum, cmt, cipher));
        }
        step
    }

    fn on_key_stored(&mut self, from: PartyId, signature: Signature) -> Step<AvssMessage> {
        let quorum = self.quorum();
        let sig_ctx = self.sig_context();
        let Some(ds) = &mut self.dealer_state else { return Step::none() };
        if ds.cipher_sent || ds.signed_by.contains(&from.index()) {
            return Step::none();
        }
        let msg_bytes = setupfree_wire::to_bytes(&ds.commitment);
        if !self.keyring.sig_key(from.index()).verify(&sig_ctx, &msg_bytes, &signature) {
            return Step::none();
        }
        ds.signed_by.insert(from.index());
        ds.signatures.push((from, signature));
        if ds.signatures.len() >= quorum {
            ds.cipher_sent = true;
            let key = ds.poly_a.constant();
            let secret = ds.secret.clone();
            // Drain the collected signatures (they are never needed again)
            // and fold them into one aggregated certificate.
            let entries: Vec<(usize, Signature)> = std::mem::take(&mut ds.signatures)
                .into_iter()
                .map(|(pid, sig)| (pid.index(), sig))
                .collect();
            let commitment = ds.commitment.clone();
            let cert = QuorumCert::new(
                quorum,
                &entries,
                self.keyring.sig_key_slice(),
                &sig_ctx,
                &msg_bytes,
            )
            .expect("individually verified quorum signatures must aggregate");
            let cipher = self.encrypt(key, &secret);
            return Step::multicast(AvssMessage::Cipher { quorum: cert, commitment, cipher });
        }
        Step::none()
    }

    fn on_cipher(
        &mut self,
        from: PartyId,
        quorum: QuorumCert,
        commitment: PedersenCommitment,
        cipher: Vec<u8>,
    ) -> Step<AvssMessage> {
        if from != self.dealer || self.echo_sent {
            return Step::none();
        }
        if self.recorded_commitment.is_none() {
            // Alg 1 line 17: wait for the KeyShare before echoing.
            if self.pending_cipher.is_none() {
                self.pending_cipher = Some((quorum, commitment, cipher));
            }
            return Step::none();
        }
        self.try_accept_cipher(quorum, commitment, cipher)
    }

    fn try_accept_cipher(
        &mut self,
        quorum: QuorumCert,
        commitment: PedersenCommitment,
        cipher: Vec<u8>,
    ) -> Step<AvssMessage> {
        if self.echo_sent {
            return Step::none();
        }
        let Some(recorded) = &self.recorded_commitment else { return Step::none() };
        if *recorded != commitment {
            return Step::none();
        }
        if !self.verify_quorum(&commitment, &quorum) {
            return Step::none();
        }
        self.locked = true;
        self.echo_sent = true;
        setupfree_obs::phase(setupfree_obs::Phase::AvssCipher, 0);
        Step::multicast(AvssMessage::Echo { cipher })
    }

    fn verify_quorum(&self, commitment: &PedersenCommitment, quorum: &QuorumCert) -> bool {
        // The certificate's signer bitmap makes duplicates unrepresentable
        // and its verification pins distinct registered signers ≥ n − f.
        quorum.quorum() >= self.quorum()
            && quorum.verify(
                self.keyring.sig_key_slice(),
                &self.sig_context(),
                &setupfree_wire::to_bytes(commitment),
            )
    }

    fn on_echo(&mut self, from: PartyId, cipher: Vec<u8>) -> Step<AvssMessage> {
        let quorum = 2 * self.f() + 1;
        let digest = sha256(&cipher);
        let entry = self.echoes.entry(digest).or_insert_with(|| (BTreeSet::new(), cipher));
        entry.0.insert(from.index());
        if entry.0.len() >= quorum && !self.ready_sent {
            self.ready_sent = true;
            return Step::multicast(AvssMessage::Ready { cipher: entry.1.clone() });
        }
        Step::none()
    }

    fn on_ready(&mut self, from: PartyId, cipher: Vec<u8>) -> Step<AvssMessage> {
        let quorum = 2 * self.f() + 1;
        let amplify = self.f() + 1;
        let digest = sha256(&cipher);
        let entry = self.readies.entry(digest).or_insert_with(|| (BTreeSet::new(), cipher));
        entry.0.insert(from.index());
        let count = entry.0.len();
        let value = entry.1.clone();
        let mut step = Step::none();
        if count >= amplify && !self.ready_sent {
            self.ready_sent = true;
            step.push_multicast(AvssMessage::Ready { cipher: value.clone() });
        }
        if count >= quorum && self.share_output.is_none() {
            // Alg 1 line 26: output (cipher, shA, shB, cmt); shares may be ⊥.
            let (share_a, share_b, commitment) = if self.locked {
                (self.recorded_share_a, self.recorded_share_b, self.recorded_commitment.clone())
            } else {
                (None, None, None)
            };
            setupfree_obs::phase(setupfree_obs::Phase::AvssShare, share_a.is_some() as u32);
            self.share_output = Some(AvssShareOutput { cipher: value, share_a, share_b, commitment });
        }
        step
    }

    /// Activates the reconstruction phase (Alg 2), using this party's sharing
    /// output as input.  Must only be called after the sharing phase has
    /// produced an output.
    ///
    /// # Panics
    ///
    /// Panics if the sharing phase has not completed for this party.
    pub fn start_reconstruction(&mut self) -> Step<AvssMessage> {
        assert!(self.share_output.is_some(), "reconstruction requires the sharing output");
        if self.rec_activated {
            return Step::none();
        }
        self.rec_activated = true;
        let mut step = Step::none();
        // Alg 2 lines 2–3: multicast our key shares if we hold them.
        if self.locked {
            if let (Some(a), Some(b)) = (self.recorded_share_a, self.recorded_share_b) {
                step.push_multicast(AvssMessage::KeyRec { share_a: a, share_b: b });
            }
        }
        // Drain buffered reconstruction traffic.
        let buffered = std::mem::take(&mut self.rec_buffer);
        for (from, msg) in buffered {
            step.extend(self.handle_rec(from, msg));
        }
        step
    }

    /// Whether this party has activated the reconstruction phase.
    pub fn reconstruction_started(&self) -> bool {
        self.rec_activated
    }
}

/// [`ProtocolInstance`] for a bare AVSS: activation distributes the dealer's
/// key shares, messages go through [`Avss::handle`], and the output is the
/// reconstructed secret.  This is what lets an AVSS instance sit directly in
/// a session-router tree (`Leaf<Avss>` inside the Coin); parents drive the
/// phase transition explicitly via [`Avss::start_reconstruction`].  For
/// stand-alone runs with automatic reconstruction see
/// [`harness::AvssEndToEnd`].
impl ProtocolInstance for Avss {
    type Message = AvssMessage;
    type Output = Vec<u8>;

    fn on_activation(&mut self) -> Step<AvssMessage> {
        self.activate()
    }

    fn on_message(&mut self, from: PartyId, msg: AvssMessage) -> Step<AvssMessage> {
        self.handle(from, msg)
    }

    fn output(&self) -> Option<Vec<u8>> {
        self.reconstructed().map(<[u8]>::to_vec)
    }
}

impl Avss {

    fn handle_rec(&mut self, from: PartyId, msg: AvssMessage) -> Step<AvssMessage> {
        match msg {
            AvssMessage::KeyRec { share_a, share_b } => self.on_key_rec(from, share_a, share_b),
            AvssMessage::Key { key } => self.on_key(from, key),
            _ => Step::none(),
        }
    }

    fn on_key_rec(&mut self, from: PartyId, share_a: Scalar, share_b: Scalar) -> Step<AvssMessage> {
        if !self.key_rec_seen.insert(from.index()) || self.key_sent {
            return Step::none();
        }
        let Some(cmt) = self.recorded_commitment.clone() else { return Step::none() };
        self.key_rec_pending.push((from.index() + 1, share_a, share_b));
        // Defer the Pedersen opening checks until the pending set could reach
        // the f + 1 reconstruction threshold, then verify the whole set in
        // one random-linear-combination check (per-share fallback identifies
        // any bad shares without losing the good ones).
        if self.key_rec_shares.len() + self.key_rec_pending.len() <= self.f() {
            return Step::none();
        }
        let pending = std::mem::take(&mut self.key_rec_pending);
        // Batch weights come from this party's secret signing key, unknown to
        // whoever crafted the shares.
        let flags = cmt.verify_shares_batch(&pending, &self.secrets.sig.batch_entropy());
        for ((point, a, _), ok) in pending.into_iter().zip(flags) {
            if ok {
                self.key_rec_shares.push((point, a));
            }
        }
        if self.key_rec_shares.len() > self.f() {
            let points: Vec<(Scalar, Scalar)> = self
                .key_rec_shares
                .iter()
                .map(|(x, y)| (Scalar::from_u64(*x as u64), *y))
                .collect();
            // Interpolation over a repeated quorum hits the cached Lagrange
            // table inside `interpolate_at_zero`.
            let key = interpolate_at_zero(&points);
            self.key_sent = true;
            return Step::multicast(AvssMessage::Key { key });
        }
        Step::none()
    }

    fn on_key(&mut self, from: PartyId, key: Scalar) -> Step<AvssMessage> {
        let votes = self.key_votes.entry(key.to_u64()).or_default();
        votes.insert(from.index());
        if votes.len() > self.f() && self.reconstructed.is_none() {
            if let Some(output) = &self.share_output {
                let plain = self.encrypt(key, &output.cipher);
                self.reconstructed = Some(plain);
            }
        }
        Step::none()
    }
}

// ---------------------------------------------------------------------------
// Byzantine dealer behaviours used by tests and the experiment harness.
// ---------------------------------------------------------------------------

/// A Byzantine dealer that sends share values inconsistent with its
/// commitment to a subset of parties (they will refuse to sign), while
/// behaving correctly towards the rest.
#[derive(Debug)]
pub struct InconsistentShareDealer {
    inner: Avss,
    victims: BTreeSet<usize>,
}

impl InconsistentShareDealer {
    /// Wraps an honest dealer instance, corrupting the shares sent to
    /// `victims`.
    pub fn new(inner: Avss, victims: BTreeSet<usize>) -> Self {
        InconsistentShareDealer { inner, victims }
    }

    /// Activates the corrupted dealer.
    pub fn activate(&mut self) -> Step<AvssMessage> {
        let step = self.inner.activate();
        let victims = self.victims.clone();
        Step {
            outgoing: step
                .outgoing
                .into_iter()
                .map(|mut o| {
                    if let setupfree_net::Dest::One(pid) = o.dest {
                        if victims.contains(&pid.index()) {
                            if let AvssMessage::KeyShare { commitment, share_a, share_b } = o.msg {
                                o.msg = AvssMessage::KeyShare {
                                    commitment,
                                    share_a: share_a + Scalar::one(),
                                    share_b,
                                };
                            }
                        }
                    }
                    o
                })
                .collect(),
        }
    }

    /// Forwards message handling to the honest logic.
    pub fn handle(&mut self, from: PartyId, msg: AvssMessage) -> Step<AvssMessage> {
        self.inner.handle(from, msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harness::{AvssEndToEnd, AvssSharing};
    use setupfree_crypto::generate_pki;
    use setupfree_net::{BoxedParty, FifoScheduler, RandomScheduler, SilentParty, Simulation, StopReason};

    fn setup(n: usize) -> (Arc<Keyring>, Vec<Arc<PartySecrets>>) {
        let (keyring, secrets) = generate_pki(n, 99);
        (Arc::new(keyring), secrets.into_iter().map(Arc::new).collect())
    }

    fn sharing_parties(
        n: usize,
        secret: &[u8],
        keyring: &Arc<Keyring>,
        secrets: &[Arc<PartySecrets>],
    ) -> Vec<BoxedParty<AvssMessage, AvssShareOutput>> {
        (0..n)
            .map(|i| {
                let input = if i == 0 { Some(secret.to_vec()) } else { None };
                Box::new(AvssSharing::new(Avss::new(
                    Sid::new("avss-test"),
                    PartyId(i),
                    PartyId(0),
                    keyring.clone(),
                    secrets[i].clone(),
                    input,
                ))) as BoxedParty<AvssMessage, AvssShareOutput>
            })
            .collect()
    }

    #[test]
    fn sharing_completes_for_all_honest_parties() {
        let n = 4;
        let (keyring, secrets) = setup(n);
        let parties = sharing_parties(n, b"secret!", &keyring, &secrets);
        let mut sim = Simulation::new(parties, Box::new(FifoScheduler::default()));
        let report = sim.run(1_000_000);
        assert_eq!(report.reason, StopReason::AllOutputs);
        let outputs: Vec<AvssShareOutput> = sim.outputs().into_iter().flatten().collect();
        // Agreement on the ciphertext (Lemma 1).
        for w in outputs.windows(2) {
            assert_eq!(w[0].cipher, w[1].cipher);
        }
        // With an honest dealer and FIFO delivery everyone holds shares.
        assert!(outputs.iter().all(|o| o.share_a.is_some() && o.commitment.is_some()));
    }

    #[test]
    fn end_to_end_share_then_reconstruct() {
        for seed in 0..5 {
            let n = 4;
            let (keyring, secrets) = setup(n);
            let secret = b"the dealer's secret value".to_vec();
            let parties: Vec<BoxedParty<AvssMessage, Vec<u8>>> = (0..n)
                .map(|i| {
                    let input = if i == 1 { Some(secret.clone()) } else { None };
                    Box::new(AvssEndToEnd::new(Avss::new(
                        Sid::new("avss-e2e"),
                        PartyId(i),
                        PartyId(1),
                        keyring.clone(),
                        secrets[i].clone(),
                        input,
                    ))) as BoxedParty<AvssMessage, Vec<u8>>
                })
                .collect();
            let mut sim = Simulation::new(parties, Box::new(RandomScheduler::new(seed)));
            let report = sim.run(1_000_000);
            assert_eq!(report.reason, StopReason::AllOutputs, "seed {seed}");
            for out in sim.outputs() {
                assert_eq!(out.unwrap(), secret, "correctness (Lemma 6), seed {seed}");
            }
        }
    }

    #[test]
    fn tolerates_f_crashed_receivers() {
        let n = 7;
        let (keyring, secrets) = setup(n);
        let secret = b"resilient".to_vec();
        let mut parties: Vec<BoxedParty<AvssMessage, Vec<u8>>> = (0..n)
            .map(|i| {
                let input = if i == 0 { Some(secret.clone()) } else { None };
                Box::new(AvssEndToEnd::new(Avss::new(
                    Sid::new("avss-crash"),
                    PartyId(i),
                    PartyId(0),
                    keyring.clone(),
                    secrets[i].clone(),
                    input,
                ))) as BoxedParty<AvssMessage, Vec<u8>>
            })
            .collect();
        parties[5] = Box::new(SilentParty::new());
        parties[6] = Box::new(SilentParty::new());
        let mut sim = Simulation::new(parties, Box::new(RandomScheduler::new(11)));
        sim.mark_byzantine(PartyId(5));
        sim.mark_byzantine(PartyId(6));
        let report = sim.run(2_000_000);
        assert_eq!(report.reason, StopReason::AllOutputs);
        for (i, out) in sim.outputs().into_iter().enumerate() {
            if i < 5 {
                assert_eq!(out.unwrap(), secret);
            }
        }
    }

    #[test]
    fn silent_dealer_produces_no_output() {
        let n = 4;
        let (keyring, secrets) = setup(n);
        let mut parties = sharing_parties(n, b"unused", &keyring, &secrets);
        parties[0] = Box::new(SilentParty::new());
        let mut sim = Simulation::new(parties, Box::new(FifoScheduler::default()));
        sim.mark_byzantine(PartyId(0));
        let report = sim.run(100_000);
        assert_eq!(report.reason, StopReason::Quiescent);
        assert!(sim.outputs().into_iter().skip(1).all(|o| o.is_none()));
    }

    #[test]
    fn inconsistent_shares_to_f_parties_still_complete() {
        // The dealer corrupts the shares of one party (≤ f); that party will
        // not sign, but n − f = 3 other signatures still form a quorum, and
        // the victim still outputs (with ⊥ shares) by totality.
        let n = 4;
        let (keyring, secrets) = setup(n);
        let dealer_inner = Avss::new(
            Sid::new("avss-bad"),
            PartyId(0),
            PartyId(0),
            keyring.clone(),
            secrets[0].clone(),
            Some(b"sneaky".to_vec()),
        );
        let mut victims = BTreeSet::new();
        victims.insert(3usize);
        let mut dealer = InconsistentShareDealer::new(dealer_inner, victims);
        let mut receivers: Vec<Avss> = (1..n)
            .map(|i| {
                Avss::new(
                    Sid::new("avss-bad"),
                    PartyId(i),
                    PartyId(0),
                    keyring.clone(),
                    secrets[i].clone(),
                    None,
                )
            })
            .collect();
        // Drive the exchange by hand with a simple FIFO queue.
        let mut queue: Vec<(PartyId, PartyId, AvssMessage)> = Vec::new();
        let push = |step: Step<AvssMessage>, from: PartyId, queue: &mut Vec<(PartyId, PartyId, AvssMessage)>| {
            for o in step.outgoing {
                match o.dest {
                    setupfree_net::Dest::All => {
                        for t in 0..n {
                            queue.push((from, PartyId(t), o.msg.clone()));
                        }
                    }
                    setupfree_net::Dest::One(t) => queue.push((from, t, o.msg.clone())),
                }
            }
        };
        push(dealer.activate(), PartyId(0), &mut queue);
        let mut guard = 0;
        while let Some((from, to, msg)) = queue.pop() {
            guard += 1;
            assert!(guard < 100_000, "no livelock expected");
            let step = if to.index() == 0 {
                dealer.handle(from, msg)
            } else {
                receivers[to.index() - 1].handle(from, msg)
            };
            push(step, to, &mut queue);
        }
        // All honest receivers complete sharing with the same ciphertext.
        let outs: Vec<&AvssShareOutput> =
            receivers.iter().filter_map(|r| r.sharing_output()).collect();
        assert_eq!(outs.len(), 3);
        assert!(outs.windows(2).all(|w| w[0].cipher == w[1].cipher));
        // The victim (party 3) holds no shares but still has the ciphertext.
        assert!(receivers[2].sharing_output().unwrap().share_a.is_none());
    }

    #[test]
    fn replayed_key_stored_does_not_inflate_the_quorum() {
        // A replaying adversary re-delivers one party's valid KeyStored
        // signature; the dealer must count distinct signers, not messages.
        let n = 4;
        let (keyring, secrets) = setup(n);
        let mut dealer = Avss::new(
            Sid::new("avss-dedupe"),
            PartyId(0),
            PartyId(0),
            keyring.clone(),
            secrets[0].clone(),
            Some(b"dedupe".to_vec()),
        );
        let mut receivers: Vec<Avss> = (1..n)
            .map(|i| {
                Avss::new(
                    Sid::new("avss-dedupe"),
                    PartyId(i),
                    PartyId(0),
                    keyring.clone(),
                    secrets[i].clone(),
                    None,
                )
            })
            .collect();
        let key_shares = dealer.activate();
        let mut stored: Vec<(PartyId, AvssMessage)> = Vec::new();
        for o in key_shares.outgoing {
            if let setupfree_net::Dest::One(pid) = o.dest {
                if pid.index() > 0 {
                    let step = receivers[pid.index() - 1].handle(PartyId(0), o.msg);
                    for r in step.outgoing {
                        stored.push((pid, r.msg));
                    }
                }
            }
        }
        assert_eq!(stored.len(), 3);
        // Replay party 1's signature three times: no quorum.
        let (p1, sig1) = (stored[0].0, stored[0].1.clone());
        for _ in 0..3 {
            let step = dealer.handle(p1, sig1.clone());
            assert!(step.outgoing.is_empty(), "replayed signature must not count");
        }
        // Two more distinct signers complete the n − f = 3 quorum.
        assert!(dealer.handle(stored[1].0, stored[1].1.clone()).outgoing.is_empty());
        let step = dealer.handle(stored[2].0, stored[2].1.clone());
        let cipher = step.outgoing.iter().find_map(|o| match &o.msg {
            AvssMessage::Cipher { quorum, .. } => Some(quorum.clone()),
            _ => None,
        });
        let cert = cipher.expect("third distinct signer completes the quorum");
        assert_eq!(cert.signer_count(), 3);
        assert_eq!(cert.quorum(), 3);
    }

    #[test]
    fn message_wire_roundtrip() {
        let (keyring, secrets) = setup(4);
        let mut dealer = Avss::new(
            Sid::new("wire"),
            PartyId(0),
            PartyId(0),
            keyring,
            secrets[0].clone(),
            Some(vec![1, 2, 3]),
        );
        let step = dealer.activate();
        for o in step.outgoing {
            let bytes = setupfree_wire::to_bytes(&o.msg);
            assert_eq!(setupfree_wire::from_bytes::<AvssMessage>(&bytes).unwrap(), o.msg);
        }
        let other = AvssMessage::Key { key: Scalar::from_u64(5) };
        assert_eq!(
            setupfree_wire::from_bytes::<AvssMessage>(&setupfree_wire::to_bytes(&other)).unwrap(),
            other
        );
    }

    #[test]
    fn sharing_communication_is_quadratic() {
        let measure = |n: usize| {
            let (keyring, secrets) = setup(n);
            let parties = sharing_parties(n, &[5u8; 32], &keyring, &secrets);
            let mut sim = Simulation::new(parties, Box::new(FifoScheduler::default()));
            sim.run(5_000_000);
            sim.metrics().honest_bytes as f64
        };
        let b4 = measure(4);
        let b8 = measure(8);
        let b16 = measure(16);
        let r1 = b8 / b4;
        let r2 = b16 / b8;
        // O(λ n²): doubling n should roughly quadruple the bytes.
        assert!(r1 > 2.0 && r1 < 8.0, "r1 = {r1}");
        assert!(r2 > 2.0 && r2 < 8.0, "r2 = {r2}");
    }

    #[test]
    #[should_panic(expected = "the dealer must provide a secret")]
    fn dealer_without_secret_panics() {
        let (keyring, secrets) = setup(4);
        let _ = Avss::new(Sid::new("x"), PartyId(0), PartyId(0), keyring, secrets[0].clone(), None);
    }

    #[test]
    #[should_panic(expected = "reconstruction requires the sharing output")]
    fn premature_reconstruction_panics() {
        let (keyring, secrets) = setup(4);
        let mut avss =
            Avss::new(Sid::new("x"), PartyId(1), PartyId(0), keyring, secrets[1].clone(), None);
        let _ = avss.start_reconstruction();
    }
}
