//! [`ProtocolInstance`] adapters that let a single AVSS instance be run
//! stand-alone in the simulator (for tests and benchmarks).
//!
//! Inside the Coin protocol (Alg 4) the AVSS is embedded as a sub-protocol
//! and driven directly through [`Avss::handle`]; these wrappers exist so the
//! AVSS can *also* be exercised and measured in isolation.

use setupfree_net::{PartyId, ProtocolInstance, Step};

use crate::{Avss, AvssMessage, AvssShareOutput};

/// Runs only the sharing phase (Alg 1); the output is the sharing output.
#[derive(Debug)]
pub struct AvssSharing {
    inner: Avss,
}

impl AvssSharing {
    /// Wraps an AVSS instance.
    pub fn new(inner: Avss) -> Self {
        AvssSharing { inner }
    }
}

impl ProtocolInstance for AvssSharing {
    type Message = AvssMessage;
    type Output = AvssShareOutput;

    fn on_activation(&mut self) -> Step<AvssMessage> {
        self.inner.activate()
    }

    fn on_message(&mut self, from: PartyId, msg: AvssMessage) -> Step<AvssMessage> {
        self.inner.handle(from, msg)
    }

    fn output(&self) -> Option<AvssShareOutput> {
        self.inner.sharing_output().cloned()
    }
}

/// Runs the sharing phase and, as soon as it completes locally, activates the
/// reconstruction phase (Alg 2); the output is the reconstructed secret.
#[derive(Debug)]
pub struct AvssEndToEnd {
    inner: Avss,
}

impl AvssEndToEnd {
    /// Wraps an AVSS instance.
    pub fn new(inner: Avss) -> Self {
        AvssEndToEnd { inner }
    }
}

impl ProtocolInstance for AvssEndToEnd {
    type Message = AvssMessage;
    type Output = Vec<u8>;

    fn on_activation(&mut self) -> Step<AvssMessage> {
        self.inner.activate()
    }

    fn on_message(&mut self, from: PartyId, msg: AvssMessage) -> Step<AvssMessage> {
        let mut step = self.inner.handle(from, msg);
        if self.inner.sharing_output().is_some() && !self.inner.reconstruction_started() {
            step.extend(self.inner.start_reconstruction());
        }
        step
    }

    fn output(&self) -> Option<Vec<u8>> {
        self.inner.reconstructed().map(<[u8]>::to_vec)
    }
}
