//! Validated (multi-valued) asynchronous Byzantine agreement — VBA, §7.2.
//!
//! The paper's point is that its leader-election primitive (Alg 5) can be
//! plugged into the existing VBA frameworks [16, 5, 52] to remove their
//! private setup.  This crate implements the classic Cachin–Kursawe–Petzold–
//! Shoup style VBA skeleton and makes both randomized components pluggable:
//!
//! * proposals are disseminated by *consistent broadcast* (a signature quorum
//!   guarantees per-proposer value uniqueness and external validity),
//! * once `n − f` proposals are committed, repeated rounds elect a random
//!   leader with the plugged [`ElectionFactory`] (the paper's Election, or
//!   any other), forward the leader's committed proposal, and run a plugged
//!   binary agreement on whether to accept it,
//! * the first accepted leader's value is the common output.
//!
//! The per-round elections and vote-ABAs are mounted in session
//! [`Router`]s ([`K_ELECTION`] and [`K_VOTE_ABA`], keyed by round); the
//! routers' bounded pre-activation buffers hold traffic for rounds this
//! party has not reached yet (replacing the former hand-rolled
//! `election_buffer`/`aba_buffer` pair).  The VBA's own
//! `Propose`/`Ack`/`Confirm`/`Vote` messages travel at the root path.
//!
//! Properties (Definition 7): termination in expected `O(1)` election rounds,
//! agreement, and external validity.  With the paper's Election and ABA the
//! whole construction is private-setup free and costs expected `O(λn³)` bits.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use setupfree_core::committee::Committee;
use setupfree_core::election::ElectionOutput;
use setupfree_core::traits::{AbaFactory, ElectionFactory};
use setupfree_crypto::hash::sha256;
use setupfree_crypto::sig::{QuorumCert, Signature};
use setupfree_crypto::{Keyring, PartySecrets};
use setupfree_net::mux::{committee_cap, composite_cap, decode_payload, Envelope, InstancePath};
use setupfree_net::{MuxNode, PartyId, ProtocolInstance, Router, Sid, Step};
use setupfree_wire::{Decode, Encode, Reader, WireError, Writer};

/// Path kind of the per-round election instances (keyed by round).
pub const K_ELECTION: u8 = 0;
/// Path kind of the per-round vote-ABA instances (keyed by round).
pub const K_VOTE_ABA: u8 = 1;

/// A transferable quorum certificate: one aggregated signature over a
/// proposer's value from `n − f` distinct parties (`m − f_c` members in
/// committee mode).  The paper replaces threshold signatures by signature
/// concatenations in the PKI setting (§7.2); we aggregate those
/// concatenations into a constant-size Schnorr half-aggregate plus a signer
/// bitmap.
pub type Cert = QuorumCert;

/// The external validity predicate `Q_ID` (Definition 7).
pub type Predicate = Arc<dyn Fn(&[u8]) -> bool + Send + Sync>;

/// The VBA's *local* messages (root instance path); election and vote-ABA
/// traffic travels under the path kinds above.
#[derive(Debug, Clone)]
pub enum VbaMessage {
    /// A proposer's value (consistent-broadcast send).
    Propose {
        /// The proposed value.
        value: Vec<u8>,
    },
    /// Acknowledgement signature for a proposer's value.
    Ack {
        /// Whose proposal is acknowledged.
        proposer: u32,
        /// Signature over `(proposer, H(value))`.
        signature: Signature,
    },
    /// A proposer's commit certificate for its value.
    Confirm {
        /// The proposer.
        proposer: u32,
        /// The proposed value.
        value: Vec<u8>,
        /// `n − f` acknowledgement signatures.
        cert: Cert,
    },
    /// Forwarding of the elected leader's committed proposal (or `None`).
    Vote {
        /// Election round.
        round: u32,
        /// The leader's committed value and certificate, if known.
        proposal: Option<(Vec<u8>, Cert)>,
    },
    /// Committee mode only: a member announces its decided value to all `n`
    /// parties so non-members can adopt it.  A value is adopted once
    /// `f_c + 1` distinct members announced it (at least one honest, and
    /// honest members only announce their actual output).  Never sent — and
    /// ignored — in all-to-all mode.
    Decide {
        /// The decided value.
        value: Vec<u8>,
    },
}

impl Encode for VbaMessage {
    fn encode(&self, w: &mut Writer) {
        match self {
            VbaMessage::Propose { value } => {
                w.write_u8(0);
                value.encode(w);
            }
            VbaMessage::Ack { proposer, signature } => {
                w.write_u8(1);
                w.write_u32(*proposer);
                signature.encode(w);
            }
            VbaMessage::Confirm { proposer, value, cert } => {
                w.write_u8(2);
                w.write_u32(*proposer);
                value.encode(w);
                cert.encode(w);
            }
            VbaMessage::Vote { round, proposal } => {
                w.write_u8(3);
                w.write_u32(*round);
                proposal.encode(w);
            }
            VbaMessage::Decide { value } => {
                w.write_u8(4);
                value.encode(w);
            }
        }
    }
}

impl Decode for VbaMessage {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.read_u8()? {
            0 => Ok(VbaMessage::Propose { value: Vec::<u8>::decode(r)? }),
            1 => Ok(VbaMessage::Ack { proposer: r.read_u32()?, signature: Signature::decode(r)? }),
            2 => Ok(VbaMessage::Confirm {
                proposer: r.read_u32()?,
                value: Vec::<u8>::decode(r)?,
                cert: Cert::decode(r)?,
            }),
            3 => Ok(VbaMessage::Vote {
                round: r.read_u32()?,
                proposal: Option::<(Vec<u8>, Cert)>::decode(r)?,
            }),
            4 => Ok(VbaMessage::Decide { value: Vec::<u8>::decode(r)? }),
            tag => Err(WireError::InvalidTag { tag: u64::from(tag), ty: "VbaMessage" }),
        }
    }
}

/// Per-election-round state (the round's election and ABA instances live in
/// their routers).
#[derive(Debug, Default)]
struct RoundState {
    leader: Option<PartyId>,
    vote_sent: bool,
    votes_from: BTreeSet<usize>,
    aba_input_cast: bool,
    aba_result: Option<bool>,
}

/// One party's state machine for a single VBA instance.
///
/// # Committee mode
///
/// Parameterised by a [`Committee`], like the ABA.  Under
/// [`Committee::full`] (the [`Vba::new`] default) this is the classic
/// all-to-all protocol, bit-identical.  Under a proper committee
/// ([`Vba::with_committee`]):
///
/// * only **members** propose, acknowledge, confirm and vote, and all four
///   exchanges fan out to members only; certificates carry
///   `m − f_c` *member* signatures (non-member signatures are rejected);
/// * the plugged election's leader (over `0..n`) is mapped onto a member
///   via [`Committee::member_at`], and the per-round vote-ABA should be a
///   committee ABA over the *same* committee
///   ([`MmrAbaFactory::with_committee`](setupfree_aba::MmrAbaFactory));
/// * a member that outputs multicasts [`VbaMessage::Decide`] to all `n`
///   parties; **non-members** send nothing and adopt a value announced by
///   `f_c + 1` distinct members.
pub struct Vba<EF: ElectionFactory, AF: AbaFactory> {
    sid: Sid,
    me: PartyId,
    keyring: Arc<Keyring>,
    secrets: Arc<PartySecrets>,
    predicate: Predicate,
    input: Vec<u8>,
    committee: Committee,
    election_factory: EF,
    aba_factory: AF,
    /// Parties we have acknowledged (first proposal only).
    acked: BTreeSet<usize>,
    /// Raw acknowledgement signatures collected on our own proposal,
    /// aggregated into a [`Cert`] once the quorum completes.
    own_cert: Vec<(usize, Signature)>,
    own_cert_from: BTreeSet<usize>,
    confirm_sent: bool,
    /// Committed proposals: proposer → (value, cert).
    committed: BTreeMap<usize, (Vec<u8>, Cert)>,
    rounds: BTreeMap<u32, RoundState>,
    elections: Router<EF::Instance>,
    abas: Router<AF::Instance>,
    current_round: u32,
    election_started: bool,
    /// Committee mode: decided-value digest → (value, announcing members).
    decides: BTreeMap<[u8; 32], (Vec<u8>, BTreeSet<usize>)>,
    decide_sent: bool,
    output: Option<Vec<u8>>,
    max_rounds: u32,
}

impl<EF: ElectionFactory, AF: AbaFactory> std::fmt::Debug for Vba<EF, AF> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Vba")
            .field("sid", &self.sid)
            .field("me", &self.me)
            .field("committed", &self.committed.keys().collect::<Vec<_>>())
            .field("current_round", &self.current_round)
            .field("output", &self.output.is_some())
            .finish_non_exhaustive()
    }
}

impl<EF: ElectionFactory, AF: AbaFactory> Vba<EF, AF> {
    /// Creates the VBA state machine for party `me` with the given input and
    /// external-validity predicate.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        sid: Sid,
        me: PartyId,
        keyring: Arc<Keyring>,
        secrets: Arc<PartySecrets>,
        input: Vec<u8>,
        predicate: Predicate,
        election_factory: EF,
        aba_factory: AF,
    ) -> Self {
        let n = keyring.n();
        Self::with_committee(
            sid,
            me,
            keyring,
            secrets,
            input,
            predicate,
            election_factory,
            aba_factory,
            Committee::full(n),
        )
    }

    /// Creates the VBA state machine running inside `committee` (see the
    /// type-level docs for member / listener roles).  The vote-ABA factory
    /// should build committee ABAs over the same committee.
    #[allow(clippy::too_many_arguments)]
    pub fn with_committee(
        sid: Sid,
        me: PartyId,
        keyring: Arc<Keyring>,
        secrets: Arc<PartySecrets>,
        input: Vec<u8>,
        predicate: Predicate,
        election_factory: EF,
        aba_factory: AF,
        committee: Committee,
    ) -> Self {
        let n = keyring.n();
        assert_eq!(committee.n(), n, "committee sampled over a different party set");
        let cap = if committee.is_proper() {
            committee_cap(committee.size())
        } else {
            composite_cap(n)
        };
        Vba {
            sid,
            me,
            keyring,
            secrets,
            predicate,
            input,
            committee,
            election_factory,
            aba_factory,
            acked: BTreeSet::new(),
            own_cert: Vec::new(),
            own_cert_from: BTreeSet::new(),
            confirm_sent: false,
            committed: BTreeMap::new(),
            rounds: BTreeMap::new(),
            elections: Router::with_cap(K_ELECTION, cap),
            abas: Router::with_cap(K_VOTE_ABA, cap),
            current_round: 0,
            election_started: false,
            decides: BTreeMap::new(),
            decide_sent: false,
            output: None,
            max_rounds: 32,
        }
    }

    fn n(&self) -> usize {
        self.keyring.n()
    }

    fn quorum(&self) -> usize {
        if self.committee.is_proper() {
            self.committee.quorum()
        } else {
            self.keyring.quorum()
        }
    }

    /// The committee this instance runs in.
    pub fn committee(&self) -> &Committee {
        &self.committee
    }

    /// Whether this party actively runs the protocol.
    fn is_member(&self) -> bool {
        self.committee.is_member(self.me)
    }

    /// Whether a protocol exchange with `from` is part of the active run:
    /// both endpoints must be members (always true under a full committee).
    fn active_exchange(&self, from: PartyId) -> bool {
        self.is_member() && self.committee.is_member(from)
    }

    /// Fans a protocol message out to the active participants.
    fn fan(&self, step: &mut Step<Envelope>, env: Envelope) {
        self.committee.fan_out(step, env);
    }

    /// The round the party is currently working on (diagnostics).
    pub fn round(&self) -> u32 {
        self.current_round
    }

    fn local(msg: &VbaMessage) -> Envelope {
        Envelope::seal(InstancePath::root(), msg)
    }

    fn ack_context(&self, proposer: usize) -> Vec<u8> {
        let mut ctx = self.sid.as_bytes().to_vec();
        ctx.extend_from_slice(b"/vba/ack/");
        ctx.extend_from_slice(&(proposer as u64).to_le_bytes());
        ctx
    }

    fn verify_cert(&self, proposer: usize, value: &[u8], cert: &Cert) -> bool {
        // The declared quorum must meet this instance's quorum (`verify` only
        // enforces signer_count ≥ the certificate's own declared quorum).
        if cert.quorum() < self.quorum() {
            return false;
        }
        let ctx = self.ack_context(proposer);
        let digest = sha256(value);
        if self.committee.is_proper() {
            // Committee mode: only member acknowledgements carry weight — a
            // quorum padded with non-member signatures must not verify.
            let members: Vec<usize> =
                self.committee.members().iter().map(|p| p.index()).collect();
            cert.verify_within(self.keyring.sig_key_slice(), &members, &ctx, &digest)
        } else {
            cert.verify(self.keyring.sig_key_slice(), &ctx, &digest)
        }
    }

    fn round_state(&mut self, round: u32) -> &mut RoundState {
        self.rounds.entry(round).or_default()
    }

    /// Drives every pending condition to quiescence.
    fn advance(&mut self) -> Step<Envelope> {
        if !self.is_member() {
            // Listeners run no pipeline; they adopt through `Decide`.
            return Step::none();
        }
        let mut step = Step::none();
        loop {
            let mut progressed = false;

            // Start the first election round once a quorum of proposals
            // committed (n − f all-to-all, m − f_c inside a committee).
            if !self.election_started && self.committed.len() >= self.quorum() {
                self.election_started = true;
                step.extend(self.start_round(0));
                progressed = true;
            }

            if self.election_started && self.output.is_none() {
                let round = self.current_round;
                // Election decided → send our Vote.
                let election_output =
                    self.elections.get(round as usize).and_then(|e| e.output());
                let leader = {
                    // The plugged election elects over 0..n; map the index
                    // onto a member (identity when full).
                    let mapped = election_output
                        .map(|out| self.committee.member_at(out.leader.index()));
                    let state = self.round_state(round);
                    if state.leader.is_none() {
                        state.leader = mapped;
                    }
                    state.leader
                };
                if let Some(leader) = leader {
                    let state_vote_sent = self.round_state(round).vote_sent;
                    if !state_vote_sent {
                        self.round_state(round).vote_sent = true;
                        let proposal = self.committed.get(&leader.index()).cloned();
                        self.fan(&mut step, Self::local(&VbaMessage::Vote { round, proposal }));
                        progressed = true;
                    }
                    // Enough votes → cast ABA input.
                    let votes = self.round_state(round).votes_from.len();
                    let input_cast = self.round_state(round).aba_input_cast;
                    if !input_cast && votes >= self.quorum() {
                        self.round_state(round).aba_input_cast = true;
                        let have_leader_value = self.committed.contains_key(&leader.index());
                        let aba = self
                            .aba_factory
                            .create(self.sid.derive("vote-aba", round as usize), have_leader_value);
                        step.extend(self.abas.insert(round as usize, aba));
                        progressed = true;
                    }
                    // ABA decided → accept or move on.
                    let aba_output = self.abas.get(round as usize).and_then(|a| a.output());
                    let result = {
                        let state = self.round_state(round);
                        if state.aba_result.is_none() {
                            if let Some(b) = aba_output {
                                state.aba_result = Some(b);
                            }
                        }
                        state.aba_result
                    };
                    match result {
                        Some(true) => {
                            if let Some((value, _)) = self.committed.get(&leader.index()) {
                                // Agreement: the leader's committed value is
                                // unique (per-proposer uniqueness of the
                                // consistent broadcast) and externally valid.
                                let value = value.clone();
                                self.output = Some(value.clone());
                                // Committee mode: announce the decision to all
                                // n parties so listeners terminate too.
                                if self.committee.is_proper() && !self.decide_sent {
                                    self.decide_sent = true;
                                    step.push_multicast(Self::local(&VbaMessage::Decide {
                                        value,
                                    }));
                                }
                                progressed = true;
                            }
                            // Otherwise wait: some honest party voted 1, so its
                            // Vote carries the value and certificate.
                        }
                        Some(false) if round + 1 < self.max_rounds => {
                            self.current_round = round + 1;
                            step.extend(self.start_round(round + 1));
                            progressed = true;
                        }
                        _ => {}
                    }
                }
            }

            if !progressed {
                break;
            }
        }
        step
    }

    fn start_round(&mut self, round: u32) -> Step<Envelope> {
        // A VBA "view" in the trace: one election round with its vote-ABA.
        setupfree_obs::phase(setupfree_obs::Phase::VbaView, round);
        let sid = self.sid.derive("election", round as usize);
        let election = self.election_factory.create(sid);
        // Mounting the round's election replays buffered traffic for it.
        self.elections.insert(round as usize, election)
    }

    fn on_propose(&mut self, from: PartyId, value: Vec<u8>) -> Step<Envelope> {
        if !self.active_exchange(from) {
            return Step::none();
        }
        if self.acked.contains(&from.index()) || !(self.predicate)(&value) {
            return Step::none();
        }
        self.acked.insert(from.index());
        let signature = self.secrets.sig.sign(&self.ack_context(from.index()), &sha256(&value));
        Step::send(
            from,
            Self::local(&VbaMessage::Ack { proposer: from.index() as u32, signature }),
        )
    }

    fn on_ack(&mut self, from: PartyId, proposer: u32, signature: Signature) -> Step<Envelope> {
        if !self.active_exchange(from) {
            return Step::none();
        }
        if proposer as usize != self.me.index() || self.confirm_sent {
            return Step::none();
        }
        if self.own_cert_from.contains(&from.index()) {
            return Step::none();
        }
        let ctx = self.ack_context(self.me.index());
        if !self.keyring.sig_key(from.index()).verify(&ctx, &sha256(&self.input), &signature) {
            return Step::none();
        }
        self.own_cert_from.insert(from.index());
        self.own_cert.push((from.index(), signature));
        if self.own_cert.len() >= self.quorum() {
            self.confirm_sent = true;
            // Aggregate the drained acknowledgements into one certificate.
            let entries = std::mem::take(&mut self.own_cert);
            let cert = QuorumCert::new(
                self.quorum(),
                &entries,
                self.keyring.sig_key_slice(),
                &ctx,
                &sha256(&self.input),
            )
            .expect("individually verified acknowledgements always aggregate");
            let mut step = Step::none();
            self.fan(
                &mut step,
                Self::local(&VbaMessage::Confirm {
                    proposer: self.me.index() as u32,
                    value: self.input.clone(),
                    cert,
                }),
            );
            return step;
        }
        Step::none()
    }

    fn record_committed(&mut self, proposer: usize, value: Vec<u8>, cert: Cert) {
        if proposer >= self.n() || self.committed.contains_key(&proposer) {
            return;
        }
        if !(self.predicate)(&value) || !self.verify_cert(proposer, &value, &cert) {
            return;
        }
        self.committed.insert(proposer, (value, cert));
    }

    fn on_local(&mut self, from: PartyId, msg: VbaMessage) -> Step<Envelope> {
        match msg {
            VbaMessage::Propose { value } => self.on_propose(from, value),
            VbaMessage::Ack { proposer, signature } => self.on_ack(from, proposer, signature),
            VbaMessage::Confirm { proposer, value, cert } => {
                if self.active_exchange(from) {
                    self.record_committed(proposer as usize, value, cert);
                }
                Step::none()
            }
            VbaMessage::Vote { round, proposal } => {
                if !self.active_exchange(from) || round >= self.max_rounds {
                    return Step::none();
                }
                // A vote may carry the leader's committed proposal; verify and
                // adopt it regardless of whose round state we are in.
                if let Some((value, cert)) = proposal {
                    let leader = self.round_state(round).leader;
                    if let Some(leader) = leader {
                        self.record_committed(leader.index(), value, cert);
                    } else {
                        // Leader unknown yet: try to match the certificate
                        // against any proposer (the certificate itself names
                        // the proposer implicitly through the signed context,
                        // so try all).
                        for proposer in 0..self.n() {
                            if self.verify_cert(proposer, &value, &cert) {
                                self.record_committed(proposer, value.clone(), cert.clone());
                                break;
                            }
                        }
                    }
                }
                self.round_state(round).votes_from.insert(from.index());
                Step::none()
            }
            VbaMessage::Decide { value } => self.on_decide(from, value),
        }
    }

    /// Committee mode: adopt a value once `f_c + 1` distinct members
    /// announced it — at least one of them is honest, and honest members
    /// only announce their actual (agreed) output.
    fn on_decide(&mut self, from: PartyId, value: Vec<u8>) -> Step<Envelope> {
        if !self.committee.is_proper()
            || !self.committee.is_member(from)
            || self.output.is_some()
        {
            return Step::none();
        }
        let entry = self
            .decides
            .entry(sha256(&value))
            .or_insert_with(|| (value, BTreeSet::new()));
        entry.1.insert(from.index());
        if entry.1.len() >= self.committee.adopt_threshold() {
            self.output = Some(entry.0.clone());
        }
        Step::none()
    }
}

impl<EF: ElectionFactory, AF: AbaFactory> MuxNode for Vba<EF, AF> {
    type Output = Vec<u8>;

    fn on_activation(&mut self) -> Step<Envelope> {
        if !self.is_member() {
            // Listeners contribute no proposal and send nothing; they
            // terminate by adopting the committee's `Decide` announcements.
            return Step::none();
        }
        assert!(
            (self.predicate)(&self.input),
            "VBA requires an input satisfying the external-validity predicate"
        );
        let mut step = Step::none();
        self.fan(&mut step, Self::local(&VbaMessage::Propose { value: self.input.clone() }));
        step.extend(self.advance());
        step
    }

    fn on_envelope(
        &mut self,
        from: PartyId,
        path: InstancePath,
        payload: &Arc<[u8]>,
    ) -> Step<Envelope> {
        if from.index() >= self.n() {
            return Step::none();
        }
        let mut step = match path.split_first() {
            None => match decode_payload::<VbaMessage>(payload) {
                Some(msg) => self.on_local(from, msg),
                None => Step::none(),
            },
            Some((seg, rest)) => {
                let round = seg.index as u32;
                if round >= self.max_rounds {
                    return Step::none();
                }
                // Committee mode: election/vote-ABA traffic is a members-only
                // exchange.  Dropping (rather than buffering) non-member
                // traffic keeps listeners' pre-activation buffers empty.
                if !self.active_exchange(from) {
                    return Step::none();
                }
                match seg.kind {
                    K_ELECTION => self.elections.route(from, seg.index, rest, payload),
                    K_VOTE_ABA => self.abas.route(from, seg.index, rest, payload),
                    _ => Step::none(),
                }
            }
        };
        step.extend(self.advance());
        step
    }

    fn output(&self) -> Option<Vec<u8>> {
        self.output.clone()
    }

    fn pre_activation_stats(&self) -> setupfree_net::BufferStats {
        self.elections.stats().merge(self.abas.stats())
    }
}

impl<EF: ElectionFactory, AF: AbaFactory> ProtocolInstance for Vba<EF, AF> {
    type Message = Envelope;
    type Output = Vec<u8>;

    fn on_activation(&mut self) -> Step<Envelope> {
        MuxNode::on_activation(self)
    }

    fn on_message(&mut self, from: PartyId, msg: Envelope) -> Step<Envelope> {
        self.on_envelope(from, msg.path, &msg.payload)
    }

    fn output(&self) -> Option<Vec<u8>> {
        MuxNode::output(self)
    }

    fn pre_activation_stats(&self) -> setupfree_net::BufferStats {
        MuxNode::pre_activation_stats(self)
    }
}

/// A predicate accepting every value (the common choice when VBA is used as
/// plain multi-valued agreement).
pub fn accept_all() -> Predicate {
    Arc::new(|_| true)
}

/// Re-export of the election output type for downstream convenience.
pub type VbaElectionOutput = ElectionOutput;

#[cfg(test)]
mod tests {
    use super::*;
    use setupfree_aba::MmrAbaFactory;
    use setupfree_core::election::Election;
    use setupfree_core::TrustedCoinFactory;
    use setupfree_crypto::generate_pki;
    use setupfree_net::{BoxedParty, FifoScheduler, RandomScheduler, SilentParty, Simulation, StopReason};

    /// Election factory over the full Coin but with the idealised ABA-coin:
    /// the real Election (Alg 5) with the real internal Coin, where the
    /// internal ABA uses the trusted coin to keep unit tests fast.  The full
    /// "everything setup-free" stack is exercised in the workspace
    /// integration tests.
    #[derive(Clone)]
    struct TestElectionFactory {
        me: PartyId,
        keyring: Arc<Keyring>,
        secrets: Arc<PartySecrets>,
    }

    impl ElectionFactory for TestElectionFactory {
        type Instance = Election<MmrAbaFactory<TrustedCoinFactory>>;

        fn create(&self, sid: Sid) -> Self::Instance {
            let aba = MmrAbaFactory::new(self.me, self.keyring.n(), self.keyring.f(), TrustedCoinFactory);
            Election::new(sid, self.me, self.keyring.clone(), self.secrets.clone(), aba)
        }
    }


    fn make_parties(
        n: usize,
        inputs: Vec<Vec<u8>>,
        predicate: Predicate,
        pki_seed: u64,
    ) -> Vec<BoxedParty<Envelope, Vec<u8>>> {
        let (keyring, secrets) = generate_pki(n, pki_seed);
        let keyring = Arc::new(keyring);
        let secrets: Vec<Arc<PartySecrets>> = secrets.into_iter().map(Arc::new).collect();
        (0..n)
            .map(|i| {
                let ef = TestElectionFactory {
                    me: PartyId(i),
                    keyring: keyring.clone(),
                    secrets: secrets[i].clone(),
                };
                let af = MmrAbaFactory::new(PartyId(i), n, keyring.f(), TrustedCoinFactory);
                Box::new(Vba::new(
                    Sid::new("vba"),
                    PartyId(i),
                    keyring.clone(),
                    secrets[i].clone(),
                    inputs[i].clone(),
                    predicate.clone(),
                    ef,
                    af,
                )) as BoxedParty<Envelope, Vec<u8>>
            })
            .collect()
    }

    fn check_agreement(outputs: &[Option<Vec<u8>>], honest: usize, inputs: &[Vec<u8>]) {
        let decided: Vec<&Vec<u8>> =
            outputs.iter().take(honest).map(|o| o.as_ref().expect("honest must decide")).collect();
        assert!(decided.windows(2).all(|w| w[0] == w[1]), "agreement violated");
        assert!(inputs.contains(decided[0]), "output must be one of the proposed values");
    }

    #[test]
    fn all_honest_agree_on_a_proposed_value() {
        let n = 4;
        let inputs: Vec<Vec<u8>> = (0..n).map(|i| format!("proposal-{i}").into_bytes()).collect();
        let mut sim =
            Simulation::new(make_parties(n, inputs.clone(), accept_all(), 1), Box::new(FifoScheduler::default()));
        let report = sim.run(50_000_000);
        assert_eq!(report.reason, StopReason::AllOutputs);
        check_agreement(&sim.outputs(), n, &inputs);
    }

    #[test]
    fn agreement_under_random_schedules() {
        for seed in 0..3 {
            let n = 4;
            let inputs: Vec<Vec<u8>> = (0..n).map(|i| vec![i as u8 + 1; 8]).collect();
            let mut sim = Simulation::new(
                make_parties(n, inputs.clone(), accept_all(), 2),
                Box::new(RandomScheduler::new(seed)),
            );
            let report = sim.run(50_000_000);
            assert_eq!(report.reason, StopReason::AllOutputs, "seed {seed}");
            check_agreement(&sim.outputs(), n, &inputs);
        }
    }

    #[test]
    fn external_validity_is_enforced() {
        // Predicate: the value must start with the magic byte 0x42.  One
        // Byzantine party proposes an invalid value; the decided value must
        // always satisfy the predicate.
        let n = 4;
        let predicate: Predicate = Arc::new(|v: &[u8]| v.first() == Some(&0x42));
        let mut inputs: Vec<Vec<u8>> = (0..n).map(|i| vec![0x42, i as u8]).collect();
        inputs[3] = vec![0x42, 99]; // still valid; the invalid-proposer case is
                                    // covered by the silent-party test (an
                                    // honest VBA asserts its own input).
        let mut sim = Simulation::new(
            make_parties(n, inputs.clone(), predicate.clone(), 3),
            Box::new(RandomScheduler::new(7)),
        );
        let report = sim.run(50_000_000);
        assert_eq!(report.reason, StopReason::AllOutputs);
        let out = sim.outputs()[0].clone().unwrap();
        assert!(predicate(&out));
        check_agreement(&sim.outputs(), n, &inputs);
    }

    #[test]
    fn tolerates_a_silent_party() {
        let n = 4;
        let inputs: Vec<Vec<u8>> = (0..n).map(|i| vec![i as u8; 4]).collect();
        let mut parties = make_parties(n, inputs.clone(), accept_all(), 4);
        parties[2] = Box::new(SilentParty::new());
        let mut sim = Simulation::new(parties, Box::new(RandomScheduler::new(5)));
        sim.mark_byzantine(PartyId(2));
        let report = sim.run(80_000_000);
        assert_eq!(report.reason, StopReason::AllOutputs);
        let outputs = sim.outputs();
        let decided: Vec<&Vec<u8>> = outputs
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != 2)
            .map(|(_, o)| o.as_ref().unwrap())
            .collect();
        assert!(decided.windows(2).all(|w| w[0] == w[1]));
        assert!(inputs.contains(decided[0]));
    }

    #[test]
    #[should_panic(expected = "external-validity")]
    fn invalid_own_input_panics() {
        let n = 4;
        let predicate: Predicate = Arc::new(|v: &[u8]| !v.is_empty());
        let inputs: Vec<Vec<u8>> = vec![vec![], vec![1], vec![2], vec![3]];
        let mut parties = make_parties(n, inputs, predicate, 5);
        // Activating party 0 with an empty (invalid) input must panic.
        let _ = parties[0].on_activation();
    }

    #[allow(clippy::type_complexity)]
    fn make_committee_parties(
        n: usize,
        size: usize,
        committee_seed: u64,
        pki_seed: u64,
    ) -> (Committee, Vec<BoxedParty<Envelope, Vec<u8>>>, Vec<Vec<u8>>) {
        use setupfree_core::{CommitteeConfig, TrustedElectionFactory};
        let config = CommitteeConfig::new(size, "vba-test");
        let committee = Committee::sample(&config, &committee_seed.to_le_bytes(), n);
        let inputs: Vec<Vec<u8>> = (0..n).map(|i| format!("val-{i}").into_bytes()).collect();
        let (keyring, secrets) = generate_pki(n, pki_seed);
        let keyring = Arc::new(keyring);
        let secrets: Vec<Arc<PartySecrets>> = secrets.into_iter().map(Arc::new).collect();
        let parties = (0..n)
            .map(|i| {
                let af = MmrAbaFactory::with_committee(
                    PartyId(i),
                    n,
                    keyring.f(),
                    TrustedCoinFactory,
                    committee.clone(),
                );
                Box::new(Vba::with_committee(
                    Sid::new("cvba"),
                    PartyId(i),
                    keyring.clone(),
                    secrets[i].clone(),
                    inputs[i].clone(),
                    accept_all(),
                    TrustedElectionFactory::new(n),
                    af,
                    committee.clone(),
                )) as BoxedParty<Envelope, Vec<u8>>
            })
            .collect();
        (committee, parties, inputs)
    }

    #[test]
    fn committee_vba_members_and_listeners_agree() {
        let (n, size) = (22, 10);
        for seed in 0..3u64 {
            let (committee, parties, inputs) = make_committee_parties(n, size, 0xFEED, 40 + seed);
            let mut sim = Simulation::new(parties, Box::new(RandomScheduler::new(seed)));
            let report = sim.run(200_000_000);
            assert_eq!(report.reason, StopReason::AllOutputs, "seed {seed}");
            let outputs = sim.outputs();
            let decided: Vec<&Vec<u8>> =
                outputs.iter().map(|o| o.as_ref().expect("every party decides")).collect();
            assert!(decided.windows(2).all(|w| w[0] == w[1]), "agreement violated");
            // Validity: the decided value is a *member's* proposal (listeners
            // never propose).
            let member_inputs: Vec<&Vec<u8>> =
                committee.members().iter().map(|p| &inputs[p.index()]).collect();
            assert!(member_inputs.contains(&decided[0]), "seed {seed}: non-member value decided");
        }
    }

    #[test]
    fn committee_vba_tolerates_f_c_silent_members() {
        let (n, size) = (22, 10);
        let (committee, mut parties, inputs) = make_committee_parties(n, size, 0xFEED, 77);
        let f_c = committee.f();
        assert_eq!(f_c, 3);
        let silenced: Vec<PartyId> = committee.members()[..f_c].to_vec();
        for p in &silenced {
            parties[p.index()] = Box::new(SilentParty::new());
        }
        let mut sim = Simulation::new(parties, Box::new(RandomScheduler::new(11)));
        for p in &silenced {
            sim.mark_byzantine(*p);
        }
        let report = sim.run(300_000_000);
        assert_eq!(report.reason, StopReason::AllOutputs);
        let outputs = sim.outputs();
        let decided: Vec<&Vec<u8>> = outputs
            .iter()
            .enumerate()
            .filter(|(i, _)| !silenced.contains(&PartyId(*i)))
            .map(|(_, o)| o.as_ref().expect("honest party must decide"))
            .collect();
        assert!(decided.windows(2).all(|w| w[0] == w[1]));
        assert!(inputs.contains(decided[0]));
    }

    #[test]
    fn message_wire_roundtrip() {
        let (keyring, secrets) = generate_pki(4, 9);
        let sig = secrets[0].sig.sign(b"x", b"y");
        let entries: Vec<(usize, Signature)> =
            (0..3).map(|i| (i, secrets[i].sig.sign(b"x", b"y"))).collect();
        let cert = QuorumCert::new(3, &entries, keyring.sig_key_slice(), b"x", b"y").unwrap();
        let msgs: Vec<VbaMessage> = vec![
            VbaMessage::Propose { value: vec![1, 2, 3] },
            VbaMessage::Ack { proposer: 2, signature: sig },
            VbaMessage::Confirm { proposer: 1, value: vec![9], cert: cert.clone() },
            VbaMessage::Vote { round: 1, proposal: Some((vec![4], cert)) },
            VbaMessage::Decide { value: vec![7, 7, 7] },
        ];
        for msg in msgs {
            let env = Envelope::seal(InstancePath::root(), &msg);
            let bytes = setupfree_wire::to_bytes(&env);
            let decoded: Envelope = setupfree_wire::from_bytes(&bytes).unwrap();
            assert_eq!(decoded, env);
            assert_eq!(setupfree_wire::to_bytes(&decoded), bytes);
        }
    }

    #[test]
    fn committee_cert_padded_with_non_member_signatures_rejected() {
        // In committee mode a certificate must carry only member signatures:
        // a quorum "completed" by non-member acknowledgements is worthless.
        use setupfree_core::{CommitteeConfig, TrustedElectionFactory};
        let (n, size) = (22, 10);
        let config = CommitteeConfig::new(size, "vba-test");
        let committee = Committee::sample(&config, &0xFEEDu64.to_le_bytes(), n);
        let (keyring, secrets) = generate_pki(n, 13);
        let keyring = Arc::new(keyring);
        let secrets: Vec<Arc<PartySecrets>> = secrets.into_iter().map(Arc::new).collect();
        let me = committee.members()[0];
        let af = MmrAbaFactory::with_committee(
            me,
            n,
            keyring.f(),
            TrustedCoinFactory,
            committee.clone(),
        );
        let vba = Vba::with_committee(
            Sid::new("cvba"),
            me,
            keyring.clone(),
            secrets[me.index()].clone(),
            b"mine".to_vec(),
            accept_all(),
            TrustedElectionFactory::new(n),
            af,
            committee.clone(),
        );
        let proposer = committee.members()[1];
        let value = b"committee-value";
        let ctx = vba.ack_context(proposer.index());
        let digest = sha256(value);
        let quorum = committee.quorum();
        let non_member = (0..n)
            .map(PartyId)
            .find(|p| !committee.is_member(*p))
            .expect("a proper committee leaves non-members");
        // Quorum-sized cert whose last slot is a (validly signed!) non-member
        // acknowledgement: rejected.
        let mut entries: Vec<(usize, Signature)> = committee.members()[..quorum - 1]
            .iter()
            .map(|p| (p.index(), secrets[p.index()].sig.sign(&ctx, &digest)))
            .collect();
        entries.push((non_member.index(), secrets[non_member.index()].sig.sign(&ctx, &digest)));
        let padded =
            QuorumCert::new(quorum, &entries, keyring.sig_key_slice(), &ctx, &digest).unwrap();
        assert!(!vba.verify_cert(proposer.index(), value, &padded));
        // The same quorum drawn entirely from members verifies.
        let member_entries: Vec<(usize, Signature)> = committee.members()[..quorum]
            .iter()
            .map(|p| (p.index(), secrets[p.index()].sig.sign(&ctx, &digest)))
            .collect();
        let good =
            QuorumCert::new(quorum, &member_entries, keyring.sig_key_slice(), &ctx, &digest)
                .unwrap();
        assert!(vba.verify_cert(proposer.index(), value, &good));
        // A cert declaring a smaller quorum than the committee's must not
        // pass even if internally consistent.
        let small = QuorumCert::new(
            quorum - 1,
            &member_entries[..quorum - 1],
            keyring.sig_key_slice(),
            &ctx,
            &digest,
        )
        .unwrap();
        assert!(!vba.verify_cert(proposer.index(), value, &small));
    }
}
