//! Compact, deterministic binary codec used by every protocol message in the
//! `setupfree` workspace.
//!
//! The paper's headline metric is *communication complexity*: the number of
//! bits exchanged among honest parties.  To measure that exactly, every
//! message that crosses the simulated network is serialized through this
//! codec, and the simulator charges the resulting byte length to the sending
//! party.  The format is intentionally simple (little-endian fixed-width
//! integers, length-prefixed sequences) so encoded sizes are easy to reason
//! about when comparing against the paper's O(λ·nᵏ) bounds.
//!
//! # Example
//!
//! ```
//! use setupfree_wire::{to_bytes, from_bytes};
//!
//! # fn main() -> Result<(), setupfree_wire::WireError> {
//! let value: (u32, Vec<u8>, bool) = (7, vec![1, 2, 3], true);
//! let bytes = to_bytes(&value);
//! let decoded: (u32, Vec<u8>, bool) = from_bytes(&bytes)?;
//! assert_eq!(value, decoded);
//! # Ok(())
//! # }
//! ```

use std::fmt;

/// Error returned when decoding malformed or truncated input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before the value was fully decoded.
    UnexpectedEnd {
        /// How many more bytes were needed.
        needed: usize,
        /// How many bytes remained.
        remaining: usize,
    },
    /// A tag/discriminant byte did not correspond to any variant.
    InvalidTag {
        /// The offending tag value.
        tag: u64,
        /// A human-readable name of the type being decoded.
        ty: &'static str,
    },
    /// A length prefix exceeded the configured sanity limit.
    LengthTooLarge {
        /// The decoded length.
        len: u64,
    },
    /// Trailing bytes remained after decoding a complete value.
    TrailingBytes {
        /// Number of unconsumed bytes.
        remaining: usize,
    },
    /// The bytes decoded correctly but the value failed a semantic check
    /// (e.g. a non-canonical field element).
    InvalidValue {
        /// A human-readable name of the type being decoded.
        ty: &'static str,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnexpectedEnd { needed, remaining } => {
                write!(f, "unexpected end of input: needed {needed} bytes, {remaining} remaining")
            }
            WireError::InvalidTag { tag, ty } => write!(f, "invalid tag {tag} while decoding {ty}"),
            WireError::LengthTooLarge { len } => write!(f, "length prefix {len} exceeds sanity limit"),
            WireError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after decoding value")
            }
            WireError::InvalidValue { ty } => write!(f, "invalid value while decoding {ty}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Sanity limit on decoded collection lengths (protects tests against
/// adversarially huge length prefixes).
pub const MAX_SEQUENCE_LEN: u64 = 1 << 24;

/// Incremental writer used by [`Encode`] implementations.
#[derive(Debug, Default, Clone)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self { buf: Vec::new() }
    }

    /// Creates a writer with a pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self { buf: Vec::with_capacity(cap) }
    }

    /// Appends raw bytes verbatim.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a single byte.
    pub fn write_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u16`.
    pub fn write_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn write_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn write_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a collection length as a LEB128 varint.  Every Vec/String in
    /// the wire format funnels through here, so short collections (the
    /// overwhelming majority of protocol payloads) pay one prefix byte
    /// instead of eight.
    pub fn write_len(&mut self, v: usize) {
        let mut v = v as u64;
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                break;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Returns `true` if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer and returns the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Consumes the writer and returns the encoded bytes behind a shared,
    /// immutable allocation — the payload representation the simulator hands
    /// to all `n` recipients of a multicast without copying.
    pub fn into_shared(self) -> std::sync::Arc<[u8]> {
        self.buf.into()
    }
}

/// Incremental reader used by [`Decode`] implementations.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Number of bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::UnexpectedEnd { needed: n, remaining: self.remaining() });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads `n` raw bytes.
    pub fn read_bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        self.take(n)
    }

    /// Reads a single byte.
    pub fn read_u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn read_u16(&mut self) -> Result<u16, WireError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    pub fn read_u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn read_u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        let mut arr = [0u8; 8];
        arr.copy_from_slice(b);
        Ok(u64::from_le_bytes(arr))
    }

    /// Reads a LEB128 varint length prefix and validates it against
    /// [`MAX_SEQUENCE_LEN`].  Rejects non-minimal encodings so every length
    /// has exactly one byte representation (decode/encode stays a bijection).
    pub fn read_len(&mut self) -> Result<usize, WireError> {
        let mut len: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.read_u8()?;
            if shift > 0 && byte == 0 {
                // A zero continuation byte means the previous byte's high bit
                // was set for nothing: non-minimal encoding.
                return Err(WireError::LengthTooLarge { len: u64::MAX });
            }
            len |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                break;
            }
            shift += 7;
            if shift >= 64 {
                return Err(WireError::LengthTooLarge { len: u64::MAX });
            }
        }
        if len > MAX_SEQUENCE_LEN {
            return Err(WireError::LengthTooLarge { len });
        }
        Ok(len as usize)
    }

    /// Errors unless the entire input has been consumed.
    pub fn finish(&self) -> Result<(), WireError> {
        if self.remaining() != 0 {
            Err(WireError::TrailingBytes { remaining: self.remaining() })
        } else {
            Ok(())
        }
    }
}

/// Types that can be serialized to the wire format.
pub trait Encode {
    /// Appends the encoding of `self` to `w`.
    fn encode(&self, w: &mut Writer);

    /// Convenience: encoded byte length of `self`.
    fn encoded_len(&self) -> usize {
        let mut w = Writer::new();
        self.encode(&mut w);
        w.len()
    }
}

/// Types that can be deserialized from the wire format.
pub trait Decode: Sized {
    /// Reads a value of `Self` from `r`.
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError>;
}

/// Encodes `value` into a fresh byte vector.
pub fn to_bytes<T: Encode + ?Sized>(value: &T) -> Vec<u8> {
    let mut w = Writer::new();
    value.encode(&mut w);
    w.into_bytes()
}

/// Encodes `value` once into a shared, immutable allocation.
///
/// A multicast payload encoded this way is shared by every in-flight copy
/// (one `Arc` clone per recipient instead of one buffer copy), while each
/// recipient is still charged the exact per-destination byte length.
pub fn to_shared_bytes<T: Encode + ?Sized>(value: &T) -> std::sync::Arc<[u8]> {
    // Seed the buffer with a capacity covering the typical protocol message
    // so the doubling growth path is skipped (the final `Vec` → `Arc<[u8]>`
    // conversion copies exactly `len` bytes either way, so over-allocation
    // here costs nothing downstream).
    let mut w = Writer::with_capacity(256);
    value.encode(&mut w);
    w.into_shared()
}

/// Decodes a value of type `T` from `bytes`, requiring that all bytes are
/// consumed.
///
/// # Errors
///
/// Returns a [`WireError`] when the input is truncated, malformed, or has
/// trailing bytes.
pub fn from_bytes<T: Decode>(bytes: &[u8]) -> Result<T, WireError> {
    let mut r = Reader::new(bytes);
    let value = T::decode(&mut r)?;
    r.finish()?;
    Ok(value)
}

// ---------------------------------------------------------------------------
// Implementations for primitives and standard containers.
// ---------------------------------------------------------------------------

macro_rules! impl_int {
    ($ty:ty, $write:ident, $read:ident) => {
        impl Encode for $ty {
            fn encode(&self, w: &mut Writer) {
                w.$write(*self);
            }
        }
        impl Decode for $ty {
            fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
                r.$read()
            }
        }
    };
}

impl_int!(u8, write_u8, read_u8);
impl_int!(u16, write_u16, read_u16);
impl_int!(u32, write_u32, read_u32);
impl_int!(u64, write_u64, read_u64);

impl Encode for usize {
    fn encode(&self, w: &mut Writer) {
        w.write_u64(*self as u64);
    }
}

impl Decode for usize {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(r.read_u64()? as usize)
    }
}

impl Encode for bool {
    fn encode(&self, w: &mut Writer) {
        w.write_u8(u8::from(*self));
    }
}

impl Decode for bool {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.read_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(WireError::InvalidTag { tag: u64::from(tag), ty: "bool" }),
        }
    }
}

impl Encode for () {
    fn encode(&self, _w: &mut Writer) {}
}

impl Decode for () {
    fn decode(_r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(())
    }
}

impl<const N: usize> Encode for [u8; N] {
    fn encode(&self, w: &mut Writer) {
        w.write_bytes(self);
    }
}

impl<const N: usize> Decode for [u8; N] {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let bytes = r.read_bytes(N)?;
        let mut arr = [0u8; N];
        arr.copy_from_slice(bytes);
        Ok(arr)
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, w: &mut Writer) {
        w.write_len(self.len());
        for item in self {
            item.encode(w);
        }
    }
}

impl<T: Decode> Decode for Vec<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let len = r.read_len()?;
        let mut out = Vec::with_capacity(len.min(1024));
        for _ in 0..len {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl Encode for String {
    fn encode(&self, w: &mut Writer) {
        w.write_len(self.len());
        w.write_bytes(self.as_bytes());
    }
}

impl Decode for String {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let len = r.read_len()?;
        let bytes = r.read_bytes(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::InvalidValue { ty: "String" })
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, w: &mut Writer) {
        match self {
            None => w.write_u8(0),
            Some(v) => {
                w.write_u8(1);
                v.encode(w);
            }
        }
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.read_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            tag => Err(WireError::InvalidTag { tag: u64::from(tag), ty: "Option" }),
        }
    }
}

impl<T: Encode + ?Sized> Encode for &T {
    fn encode(&self, w: &mut Writer) {
        (*self).encode(w);
    }
}

impl<T: Encode> Encode for Box<T> {
    fn encode(&self, w: &mut Writer) {
        (**self).encode(w);
    }
}

impl<T: Decode> Decode for Box<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Box::new(T::decode(r)?))
    }
}

macro_rules! impl_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Encode),+> Encode for ($($name,)+) {
            fn encode(&self, w: &mut Writer) {
                $( self.$idx.encode(w); )+
            }
        }
        impl<$($name: Decode),+> Decode for ($($name,)+) {
            fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
                Ok(( $( $name::decode(r)?, )+ ))
            }
        }
    };
}

impl_tuple!(A: 0);
impl_tuple!(A: 0, B: 1);
impl_tuple!(A: 0, B: 1, C: 2);
impl_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn roundtrip_primitives() {
        assert_eq!(from_bytes::<u8>(&to_bytes(&17u8)).unwrap(), 17);
        assert_eq!(from_bytes::<u16>(&to_bytes(&1717u16)).unwrap(), 1717);
        assert_eq!(from_bytes::<u32>(&to_bytes(&0xdead_beefu32)).unwrap(), 0xdead_beef);
        assert_eq!(from_bytes::<u64>(&to_bytes(&u64::MAX)).unwrap(), u64::MAX);
        assert!(from_bytes::<bool>(&to_bytes(&true)).unwrap());
        assert!(!from_bytes::<bool>(&to_bytes(&false)).unwrap());
        assert_eq!(from_bytes::<usize>(&to_bytes(&42usize)).unwrap(), 42);
    }

    #[test]
    fn roundtrip_containers() {
        let v = vec![1u64, 2, 3, 4];
        assert_eq!(from_bytes::<Vec<u64>>(&to_bytes(&v)).unwrap(), v);
        let s = String::from("hello, 世界");
        assert_eq!(from_bytes::<String>(&to_bytes(&s)).unwrap(), s);
        let o: Option<u32> = Some(9);
        assert_eq!(from_bytes::<Option<u32>>(&to_bytes(&o)).unwrap(), o);
        let none: Option<u32> = None;
        assert_eq!(from_bytes::<Option<u32>>(&to_bytes(&none)).unwrap(), none);
        let arr = [7u8; 32];
        assert_eq!(from_bytes::<[u8; 32]>(&to_bytes(&arr)).unwrap(), arr);
        let tup = (1u8, vec![2u16, 3], (true, 9u64));
        assert_eq!(from_bytes::<(u8, Vec<u16>, (bool, u64))>(&to_bytes(&tup)).unwrap(), tup);
    }

    #[test]
    fn truncated_input_fails() {
        let bytes = to_bytes(&0xdead_beefu32);
        let err = from_bytes::<u32>(&bytes[..3]).unwrap_err();
        assert!(matches!(err, WireError::UnexpectedEnd { .. }));
    }

    #[test]
    fn trailing_bytes_fail() {
        let mut bytes = to_bytes(&7u8);
        bytes.push(0);
        let err = from_bytes::<u8>(&bytes).unwrap_err();
        assert!(matches!(err, WireError::TrailingBytes { remaining: 1 }));
    }

    #[test]
    fn invalid_bool_tag_fails() {
        let err = from_bytes::<bool>(&[3]).unwrap_err();
        assert!(matches!(err, WireError::InvalidTag { tag: 3, ty: "bool" }));
    }

    #[test]
    fn huge_length_prefix_rejected() {
        let mut w = Writer::new();
        w.write_len((MAX_SEQUENCE_LEN + 1) as usize);
        let err = from_bytes::<Vec<u8>>(&w.into_bytes()).unwrap_err();
        assert!(matches!(err, WireError::LengthTooLarge { .. }));
    }

    #[test]
    fn varint_length_prefix_is_compact() {
        // Short collections — the overwhelming majority on the wire — pay a
        // single prefix byte.
        assert_eq!(to_bytes(&Vec::<u8>::new()).len(), 1);
        assert_eq!(to_bytes(&vec![0u8; 127]).len(), 1 + 127);
        assert_eq!(to_bytes(&vec![0u8; 128]).len(), 2 + 128);
        assert_eq!(to_bytes(&vec![0u8; 16_383]).len(), 2 + 16_383);
        assert_eq!(to_bytes(&vec![0u8; 16_384]).len(), 3 + 16_384);
    }

    #[test]
    fn varint_length_roundtrips_at_boundaries() {
        for len in [0usize, 1, 127, 128, 255, 256, 16_383, 16_384, 1 << 20] {
            let mut w = Writer::new();
            w.write_len(len);
            let bytes = w.into_bytes();
            let mut r = Reader::new(&bytes);
            assert_eq!(r.read_len().unwrap(), len);
            r.finish().unwrap();
        }
    }

    #[test]
    fn non_minimal_varint_length_rejected() {
        // 0x80 0x00 encodes 0 with a wasted continuation byte; the canonical
        // form is the single byte 0x00.
        let mut r = Reader::new(&[0x80, 0x00]);
        assert!(matches!(r.read_len(), Err(WireError::LengthTooLarge { .. })));
    }

    #[test]
    fn encoded_len_matches_to_bytes() {
        let v = (vec![1u32, 2, 3], String::from("abc"), Some(7u64));
        assert_eq!(v.encoded_len(), to_bytes(&v).len());
    }

    #[test]
    fn shared_bytes_match_owned_encoding() {
        let v = (vec![9u64, 8, 7], String::from("shared"), Some(3u32));
        let shared = to_shared_bytes(&v);
        assert_eq!(&shared[..], &to_bytes(&v)[..]);
        // Cloning the Arc shares the allocation instead of copying bytes.
        let alias = shared.clone();
        assert!(std::sync::Arc::ptr_eq(&shared, &alias));
        assert_eq!(from_bytes::<(Vec<u64>, String, Option<u32>)>(&alias).unwrap(), v);
    }

    #[test]
    fn invalid_utf8_string_rejected() {
        let mut w = Writer::new();
        w.write_len(2);
        w.write_bytes(&[0xff, 0xfe]);
        let err = from_bytes::<String>(&w.into_bytes()).unwrap_err();
        assert!(matches!(err, WireError::InvalidValue { ty: "String" }));
    }

    proptest! {
        #[test]
        fn prop_roundtrip_u64_vec(v in proptest::collection::vec(any::<u64>(), 0..64)) {
            prop_assert_eq!(from_bytes::<Vec<u64>>(&to_bytes(&v)).unwrap(), v);
        }

        #[test]
        fn prop_roundtrip_bytes(v in proptest::collection::vec(any::<u8>(), 0..256)) {
            prop_assert_eq!(from_bytes::<Vec<u8>>(&to_bytes(&v)).unwrap(), v);
        }

        #[test]
        fn prop_roundtrip_nested(v in proptest::collection::vec((any::<u32>(), any::<bool>()), 0..32)) {
            prop_assert_eq!(from_bytes::<Vec<(u32, bool)>>(&to_bytes(&v)).unwrap(), v);
        }

        #[test]
        fn prop_roundtrip_string(s in ".*") {
            prop_assert_eq!(from_bytes::<String>(&to_bytes(&s)).unwrap(), s);
        }

        #[test]
        fn prop_roundtrip_option(v in proptest::option::of(any::<u64>())) {
            prop_assert_eq!(from_bytes::<Option<u64>>(&to_bytes(&v)).unwrap(), v);
        }

        #[test]
        fn prop_decode_arbitrary_bytes_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
            let _ = from_bytes::<Vec<(u64, bool)>>(&bytes);
            let _ = from_bytes::<(u32, String)>(&bytes);
        }
    }
}
