//! Bracha reliable broadcast (RBC) [Bracha '87], the broadcast primitive of
//! §4.
//!
//! A designated sender broadcasts a value; the protocol guarantees
//! *agreement* (no two honest parties output different values), *totality*
//! (if one honest party outputs, all do) and *validity* (an honest sender's
//! value is output by everyone), tolerating `f < n/3` Byzantine parties.
//!
//! RBC is used directly by the Election protocol (Alg 5 line 1: each party
//! reliably broadcasts its speculative largest VRF) and its message pattern
//! (`Echo` / `Ready` amplification) is reused inside the AVSS ciphertext
//! dissemination (Alg 1 lines 20–26) and the Seeding reveal phase (Alg 7
//! lines 11–17).
//!
//! # Example
//!
//! ```
//! use setupfree_net::{FifoScheduler, PartyId, ProtocolInstance, Simulation, Sid};
//! use setupfree_rbc::{Rbc, RbcMessage};
//!
//! let n = 4;
//! let f = 1;
//! let sender = PartyId(0);
//! let parties: Vec<_> = (0..n)
//!     .map(|i| {
//!         let input = if i == 0 { Some(b"hello".to_vec()) } else { None };
//!         Box::new(Rbc::new(Sid::new("demo"), PartyId(i), n, f, sender, input))
//!             as setupfree_net::BoxedParty<RbcMessage, Vec<u8>>
//!     })
//!     .collect();
//! let mut sim = Simulation::new(parties, Box::new(FifoScheduler::default()));
//! sim.run(100_000);
//! assert!(sim.outputs().iter().all(|o| o.as_deref() == Some(&b"hello"[..])));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, BTreeSet};

use setupfree_crypto::hash::{sha256, Digest};
use setupfree_net::{PartyId, ProtocolInstance, Sid, Step};
use setupfree_wire::{Decode, Encode, Reader, WireError, Writer};

/// Messages exchanged by one RBC instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RbcMessage {
    /// The sender's initial proposal.
    Init(Vec<u8>),
    /// Echo of the proposal.
    Echo(Vec<u8>),
    /// Ready (commit) message for the proposal.
    Ready(Vec<u8>),
}

impl Encode for RbcMessage {
    fn encode(&self, w: &mut Writer) {
        match self {
            RbcMessage::Init(v) => {
                w.write_u8(0);
                v.encode(w);
            }
            RbcMessage::Echo(v) => {
                w.write_u8(1);
                v.encode(w);
            }
            RbcMessage::Ready(v) => {
                w.write_u8(2);
                v.encode(w);
            }
        }
    }
}

impl Decode for RbcMessage {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.read_u8()? {
            0 => Ok(RbcMessage::Init(Vec::<u8>::decode(r)?)),
            1 => Ok(RbcMessage::Echo(Vec::<u8>::decode(r)?)),
            2 => Ok(RbcMessage::Ready(Vec::<u8>::decode(r)?)),
            tag => Err(WireError::InvalidTag { tag: u64::from(tag), ty: "RbcMessage" }),
        }
    }
}

/// One party's state machine for a single RBC instance.
#[derive(Debug)]
pub struct Rbc {
    #[allow(dead_code)]
    sid: Sid,
    me: PartyId,
    n: usize,
    f: usize,
    sender: PartyId,
    input: Option<Vec<u8>>,
    echo_sent: bool,
    ready_sent: bool,
    init_seen: bool,
    /// For each candidate value (keyed by digest): the distinct parties that
    /// echoed it, plus the value itself.
    echoes: BTreeMap<Digest, (BTreeSet<usize>, Vec<u8>)>,
    /// Same for ready messages.
    readies: BTreeMap<Digest, (BTreeSet<usize>, Vec<u8>)>,
    output: Option<Vec<u8>>,
}

impl Rbc {
    /// Creates the RBC state machine for `me`.  `input` must be `Some` for
    /// the designated `sender` and is ignored for everyone else.
    pub fn new(
        sid: Sid,
        me: PartyId,
        n: usize,
        f: usize,
        sender: PartyId,
        input: Option<Vec<u8>>,
    ) -> Self {
        Rbc {
            sid,
            me,
            n,
            f,
            sender,
            input,
            echo_sent: false,
            ready_sent: false,
            init_seen: false,
            echoes: BTreeMap::new(),
            readies: BTreeMap::new(),
            output: None,
        }
    }

    /// The designated sender of this instance.
    pub fn sender(&self) -> PartyId {
        self.sender
    }

    /// Provides the sender's input after construction (used by protocols that
    /// only learn their broadcast value mid-execution, e.g. the Election
    /// protocol broadcasting its speculative largest VRF).  Returns the
    /// `Init` multicast if `self` is the designated sender and no input had
    /// been provided yet; otherwise does nothing.
    pub fn provide_input(&mut self, value: Vec<u8>) -> Step<RbcMessage> {
        if self.me != self.sender || self.input.is_some() {
            return Step::none();
        }
        self.input = Some(value.clone());
        Step::multicast(RbcMessage::Init(value))
    }

    fn quorum(&self) -> usize {
        // 2f + 1 out of n ≥ 3f + 1 guarantees any two quorums intersect in an
        // honest party.
        2 * self.f + 1
    }

    fn handle_echo(&mut self, from: PartyId, value: Vec<u8>) -> Step<RbcMessage> {
        let quorum = self.quorum();
        let digest = sha256(&value);
        let entry = self.echoes.entry(digest).or_insert_with(|| (BTreeSet::new(), value));
        entry.0.insert(from.index());
        if entry.0.len() >= quorum && !self.ready_sent {
            self.ready_sent = true;
            return Step::multicast(RbcMessage::Ready(entry.1.clone()));
        }
        Step::none()
    }

    fn handle_ready(&mut self, from: PartyId, value: Vec<u8>) -> Step<RbcMessage> {
        let quorum = self.quorum();
        let digest = sha256(&value);
        let entry = self.readies.entry(digest).or_insert_with(|| (BTreeSet::new(), value));
        entry.0.insert(from.index());
        let count = entry.0.len();
        let value = entry.1.clone();
        let mut step = Step::none();
        if count > self.f && !self.ready_sent {
            self.ready_sent = true;
            step.push_multicast(RbcMessage::Ready(value.clone()));
        }
        if count >= quorum && self.output.is_none() {
            self.output = Some(value);
        }
        step
    }
}

impl ProtocolInstance for Rbc {
    type Message = RbcMessage;
    type Output = Vec<u8>;

    fn on_activation(&mut self) -> Step<RbcMessage> {
        if self.me == self.sender {
            if let Some(v) = self.input.clone() {
                return Step::multicast(RbcMessage::Init(v));
            }
        }
        Step::none()
    }

    fn on_message(&mut self, from: PartyId, msg: RbcMessage) -> Step<RbcMessage> {
        if from.index() >= self.n {
            return Step::none();
        }
        match msg {
            RbcMessage::Init(value) => {
                // Only the designated sender's first Init is honoured.
                if from != self.sender || self.init_seen || self.echo_sent {
                    return Step::none();
                }
                self.init_seen = true;
                self.echo_sent = true;
                Step::multicast(RbcMessage::Echo(value))
            }
            RbcMessage::Echo(value) => self.handle_echo(from, value),
            RbcMessage::Ready(value) => self.handle_ready(from, value),
        }
    }

    fn output(&self) -> Option<Vec<u8>> {
        self.output.clone()
    }
}

/// A Byzantine sender that equivocates: it sends `Init(value_a)` to the first
/// half of the parties and `Init(value_b)` to the rest.  Used by tests to
/// confirm RBC agreement holds regardless.
#[derive(Debug)]
pub struct EquivocatingSender {
    n: usize,
    value_a: Vec<u8>,
    value_b: Vec<u8>,
}

impl EquivocatingSender {
    /// Creates the equivocating sender behaviour.
    pub fn new(n: usize, value_a: Vec<u8>, value_b: Vec<u8>) -> Self {
        EquivocatingSender { n, value_a, value_b }
    }
}

impl ProtocolInstance for EquivocatingSender {
    type Message = RbcMessage;
    type Output = Vec<u8>;

    fn on_activation(&mut self) -> Step<RbcMessage> {
        let mut step = Step::none();
        for i in 0..self.n {
            let v = if i < self.n / 2 { self.value_a.clone() } else { self.value_b.clone() };
            step.push_send(PartyId(i), RbcMessage::Init(v));
        }
        step
    }

    fn on_message(&mut self, _from: PartyId, _msg: RbcMessage) -> Step<RbcMessage> {
        Step::none()
    }

    fn output(&self) -> Option<Vec<u8>> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use setupfree_net::{
        BoxedParty, FifoScheduler, RandomScheduler, SilentParty, Simulation, StopReason,
    };

    fn make_parties(n: usize, f: usize, value: &[u8]) -> Vec<BoxedParty<RbcMessage, Vec<u8>>> {
        (0..n)
            .map(|i| {
                let input = if i == 0 { Some(value.to_vec()) } else { None };
                Box::new(Rbc::new(Sid::new("t"), PartyId(i), n, f, PartyId(0), input))
                    as BoxedParty<RbcMessage, Vec<u8>>
            })
            .collect()
    }

    #[test]
    fn honest_sender_all_deliver() {
        for n in [4usize, 7, 10] {
            let f = (n - 1) / 3;
            let mut sim = Simulation::new(make_parties(n, f, b"value"), Box::new(FifoScheduler::default()));
            let report = sim.run(1_000_000);
            assert_eq!(report.reason, StopReason::AllOutputs);
            for out in sim.outputs() {
                assert_eq!(out.unwrap(), b"value".to_vec());
            }
        }
    }

    #[test]
    fn random_schedules_preserve_validity() {
        for seed in 0..20 {
            let mut sim =
                Simulation::new(make_parties(7, 2, b"payload"), Box::new(RandomScheduler::new(seed)));
            sim.run(1_000_000);
            for out in sim.outputs() {
                assert_eq!(out.unwrap(), b"payload".to_vec(), "seed {seed}");
            }
        }
    }

    #[test]
    fn tolerates_f_silent_parties() {
        let n = 7;
        let f = 2;
        let mut parties = make_parties(n, f, b"robust");
        parties[5] = Box::new(SilentParty::new());
        parties[6] = Box::new(SilentParty::new());
        let mut sim = Simulation::new(parties, Box::new(RandomScheduler::new(3)));
        sim.mark_byzantine(PartyId(5));
        sim.mark_byzantine(PartyId(6));
        let report = sim.run(1_000_000);
        assert_eq!(report.reason, StopReason::AllOutputs);
        for (i, out) in sim.outputs().into_iter().enumerate() {
            if i < 5 {
                assert_eq!(out.unwrap(), b"robust".to_vec());
            }
        }
    }

    #[test]
    fn equivocating_sender_cannot_split_honest_outputs() {
        // With n = 4, f = 1 the equivocating sender sends value A to 2 parties
        // and value B to 2 parties; no value can reach an echo quorum of 3
        // honest echoes for two different values, so agreement holds.
        for seed in 0..20 {
            let n = 4;
            let f = 1;
            let mut parties: Vec<BoxedParty<RbcMessage, Vec<u8>>> = vec![Box::new(
                EquivocatingSender::new(n, b"A".to_vec(), b"B".to_vec()),
            )];
            for i in 1..n {
                parties.push(Box::new(Rbc::new(Sid::new("t"), PartyId(i), n, f, PartyId(0), None)));
            }
            let mut sim = Simulation::new(parties, Box::new(RandomScheduler::new(seed)));
            sim.mark_byzantine(PartyId(0));
            sim.run_to_quiescence(1_000_000);
            let outputs: Vec<Vec<u8>> = sim.outputs().into_iter().skip(1).flatten().collect();
            // Agreement: all honest outputs (if any) are identical.
            for w in outputs.windows(2) {
                assert_eq!(w[0], w[1], "seed {seed}");
            }
        }
    }

    #[test]
    fn no_init_means_no_output() {
        let n = 4;
        let f = 1;
        let parties: Vec<BoxedParty<RbcMessage, Vec<u8>>> = (0..n)
            .map(|i| {
                Box::new(Rbc::new(Sid::new("t"), PartyId(i), n, f, PartyId(0), None))
                    as BoxedParty<RbcMessage, Vec<u8>>
            })
            .collect();
        let mut sim = Simulation::new(parties, Box::new(FifoScheduler::default()));
        let report = sim.run(10_000);
        assert_eq!(report.reason, StopReason::Quiescent);
        assert!(sim.outputs().iter().all(Option::is_none));
    }

    #[test]
    fn duplicate_messages_do_not_double_count() {
        let mut rbc = Rbc::new(Sid::new("t"), PartyId(1), 4, 1, PartyId(0), None);
        let _ = rbc.on_activation();
        // Same echo from the same party delivered twice: still only 1 echo.
        let _ = rbc.on_message(PartyId(2), RbcMessage::Echo(b"v".to_vec()));
        let _ = rbc.on_message(PartyId(2), RbcMessage::Echo(b"v".to_vec()));
        assert!(!rbc.ready_sent);
        let _ = rbc.on_message(PartyId(3), RbcMessage::Echo(b"v".to_vec()));
        assert!(!rbc.ready_sent);
        let step = rbc.on_message(PartyId(0), RbcMessage::Echo(b"v".to_vec()));
        assert!(rbc.ready_sent);
        assert_eq!(step.outgoing.len(), 1);
    }

    #[test]
    fn second_init_from_sender_ignored() {
        let mut rbc = Rbc::new(Sid::new("t"), PartyId(1), 4, 1, PartyId(0), None);
        let _ = rbc.on_activation();
        let s1 = rbc.on_message(PartyId(0), RbcMessage::Init(b"a".to_vec()));
        assert_eq!(s1.outgoing.len(), 1);
        let s2 = rbc.on_message(PartyId(0), RbcMessage::Init(b"b".to_vec()));
        assert!(s2.is_empty());
        // Init from a non-sender is ignored entirely.
        let mut rbc2 = Rbc::new(Sid::new("t"), PartyId(1), 4, 1, PartyId(0), None);
        let _ = rbc2.on_activation();
        assert!(rbc2.on_message(PartyId(2), RbcMessage::Init(b"a".to_vec())).is_empty());
    }

    #[test]
    fn message_wire_roundtrip() {
        for msg in [
            RbcMessage::Init(vec![1, 2, 3]),
            RbcMessage::Echo(vec![]),
            RbcMessage::Ready(vec![9; 100]),
        ] {
            let bytes = setupfree_wire::to_bytes(&msg);
            assert_eq!(setupfree_wire::from_bytes::<RbcMessage>(&bytes).unwrap(), msg);
        }
        assert!(setupfree_wire::from_bytes::<RbcMessage>(&[9]).is_err());
    }

    #[test]
    fn communication_scales_quadratically() {
        // Bracha RBC exchanges O(n^2 · |v|) bits; check the measured growth
        // factor between n=4 and n=8 is ≈ 4 (within slack).
        let measure = |n: usize| {
            let f = (n - 1) / 3;
            let mut sim = Simulation::new(make_parties(n, f, &[7u8; 64]), Box::new(FifoScheduler::default()));
            sim.run(1_000_000);
            sim.metrics().honest_bytes as f64
        };
        let b4 = measure(4);
        let b8 = measure(8);
        let ratio = b8 / b4;
        assert!(ratio > 2.5 && ratio < 6.5, "ratio {ratio}");
    }
}
