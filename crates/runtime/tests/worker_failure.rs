//! PR 6 regression: a panicking session must not take the host down.
//!
//! `run_parallel` used to panic in the *coordinator* thread when a worker
//! shard died ("a worker shard terminated early (panicked) with sessions
//! pending"), aborting the whole run — including the healthy shards' work.
//! A poisoned shard is now a structured [`WorkerFailure`] in the
//! [`ShardedRunReport`]: the run still fails loudly (`all_terminated()` is
//! false) but the process stays alive and every healthy session reports.

use setupfree_aba::MmrAba;
use setupfree_core::TrustedCoinFactory;
use setupfree_net::{
    BoxedParty, Envelope, PartyId, ProtocolInstance, RandomScheduler, Sid, Step, StopReason,
};
use setupfree_runtime::{SessionSetup, ShardedHost};

/// A party that panics the moment its session is activated — the sharpest
/// possible stand-in for a machine bug inside a session, since activation
/// happens on the worker thread right after the session index is popped.
#[derive(Debug)]
struct PoisonedParty;

impl ProtocolInstance for PoisonedParty {
    type Message = Envelope;
    type Output = bool;

    fn on_activation(&mut self) -> Step<Envelope> {
        panic!("injected fault: session poisoned at activation");
    }

    fn on_message(&mut self, _from: PartyId, _msg: Envelope) -> Step<Envelope> {
        Step::none()
    }

    fn output(&self) -> Option<bool> {
        None
    }
}

/// Session `s` is a healthy trusted-coin ABA unless `s == poisoned`, in
/// which case every party is a [`PoisonedParty`].
fn session(n: usize, s: usize, poisoned: usize) -> SessionSetup<Envelope, bool> {
    let parties: Vec<BoxedParty<Envelope, bool>> = (0..n)
        .map(|i| {
            if s == poisoned {
                Box::new(PoisonedParty) as BoxedParty<Envelope, bool>
            } else {
                Box::new(MmrAba::new(
                    Sid::new("poisoned-shard").derive("session", s),
                    PartyId(i),
                    n,
                    (n - 1) / 3,
                    (i + s).is_multiple_of(2),
                    TrustedCoinFactory,
                )) as BoxedParty<Envelope, bool>
            }
        })
        .collect();
    SessionSetup::new(parties, Box::new(RandomScheduler::new(0xFA11 + s as u64)), 1_000_000)
}

#[test]
fn a_panicking_session_becomes_a_structured_failure_not_a_host_panic() {
    let n = 4;
    let k = 6;
    let w = 3;
    let poisoned = 1usize;
    // If the old behaviour regressed, this call would panic and the test
    // would fail right here — reaching the assertions *is* the fix.
    let report = ShardedHost::new(w, k, move |s| session(n, s, poisoned)).run_parallel();

    assert!(!report.all_terminated(), "a poisoned shard must fail the run loudly");
    assert_eq!(report.failures.len(), 1, "exactly one shard died");
    let failure = &report.failures[0];
    assert_eq!(failure.shard, poisoned % w, "the failure names the dead shard");
    assert!(
        failure.message.contains("session poisoned at activation"),
        "the worker's panic payload is preserved: {:?}",
        failure.message
    );
    // Shard 1 owned sessions 1 and 4; session 1 killed it, so session 4 —
    // already queued in its inbox — never ran either.  Both are accounted
    // for, and nothing outside the dead shard is blamed.
    assert_eq!(failure.lost_sessions, vec![1, 4]);
    let shown = failure.to_string();
    assert!(shown.contains("shard 1") && shown.contains("[1, 4]"), "display names the damage");

    // Every healthy session still closed normally and reported its outputs.
    let mut reported: Vec<usize> = report.sessions.iter().map(|r| r.session).collect();
    reported.sort_unstable();
    assert_eq!(reported, vec![0, 2, 3, 5], "all healthy sessions report");
    for r in &report.sessions {
        assert_eq!(r.reason, StopReason::AllOutputs, "session {} closed cleanly", r.session);
    }
    for &s in &[0usize, 2, 3, 5] {
        let decided: Vec<bool> = report.outputs[s].iter().map(|o| o.unwrap()).collect();
        assert!(decided.windows(2).all(|p| p[0] == p[1]), "session {s} agreement");
    }
    for &s in &failure.lost_sessions {
        assert!(report.outputs[s].is_empty(), "lost session {s} reports no outputs");
    }
}

#[test]
fn a_fully_healthy_parallel_run_reports_no_failures() {
    let n = 4;
    let k = 4;
    // `poisoned` out of range: every session is healthy.
    let report = ShardedHost::new(2, k, move |s| session(n, s, usize::MAX)).run_parallel();
    assert!(report.failures.is_empty());
    assert!(report.all_terminated());
    assert_eq!(report.sessions.len(), k);
}
