//! Fault-plan composition in the sharded runtime (PR 8 satellite).
//!
//! `SessionSetup` carries the testkit's fault machinery now — `crash_after`
//! wraps a party so it goes silent mid-run, `silence` replaces one with a
//! mute Byzantine machine — and both compose with per-session adversarial
//! schedulers.  The test matrix here is the one the ROADMAP asked for: one
//! session starved by a targeted-delay scheduler, another losing a quorum
//! member mid-run, and a third suffering both at once, all inside one
//! sharded host.  Every healthy quorum still terminates and agrees, the
//! per-session conservation law still balances, and the whole report stays
//! cell-for-cell identical across worker counts.

use setupfree_aba::MmrAba;
use setupfree_core::TrustedCoinFactory;
use setupfree_net::{
    BoxedParty, Envelope, PartyId, RandomScheduler, Scheduler, Sid, StopReason,
    TargetedDelayScheduler,
};
use setupfree_runtime::{SessionSetup, ShardedHost};

const N: usize = 4;
const CRASHED: usize = 3;
const BUDGET: u64 = 1_000_000;

fn aba_parties(session: usize) -> Vec<BoxedParty<Envelope, bool>> {
    (0..N)
        .map(|i| {
            Box::new(MmrAba::new(
                Sid::new("sharded-faults").derive("session", session),
                PartyId(i),
                N,
                (N - 1) / 3,
                (i + session).is_multiple_of(2),
                TrustedCoinFactory,
            )) as BoxedParty<Envelope, bool>
        })
        .collect()
}

/// The four-session fault grid: 0 is clean, 1 is starved (all traffic
/// touching party 0 is maximally delayed), 2 loses party `CRASHED` after
/// five deliveries, 3 is starved *and* loses the same quorum member.
fn faulted_session(s: usize) -> SessionSetup<Envelope, bool> {
    let seed = 0xFA17 ^ (s as u64).wrapping_mul(0x9e37_79b9);
    let scheduler: Box<dyn Scheduler> = if s == 1 || s == 3 {
        Box::new(TargetedDelayScheduler::new(vec![PartyId(0)], seed))
    } else {
        Box::new(RandomScheduler::new(seed))
    };
    let setup = SessionSetup::new(aba_parties(s), scheduler, BUDGET);
    if s == 2 || s == 3 {
        setup.crash_after(CRASHED, 5)
    } else {
        setup
    }
}

fn agreement(outputs: &[Option<bool>]) -> bool {
    let decided: Vec<bool> = outputs.iter().flatten().copied().collect();
    decided.windows(2).all(|w| w[0] == w[1])
}

#[test]
fn starved_and_crash_faulted_sessions_still_terminate_and_agree() {
    let report = ShardedHost::new(2, 4, faulted_session).run();
    for r in &report.sessions {
        assert_eq!(
            r.reason,
            StopReason::AllOutputs,
            "session {} must close on outputs, not wedge or exhaust",
            r.session
        );
    }
    report.assert_conservation();
    for s in 0..4 {
        let outputs = &report.outputs[s];
        assert!(agreement(outputs), "session {s} agreement: {outputs:?}");
        // The healthy quorum (everyone but a crashed member) always decides.
        for (i, out) in outputs.iter().enumerate() {
            let crashed = (s == 2 || s == 3) && i == CRASHED;
            if !crashed {
                assert!(out.is_some(), "session {s} party {i} must decide");
            }
        }
    }
    // Clean session 0 has a full roster of decisions.
    assert!(report.outputs[0].iter().all(|o| o.is_some()));
}

#[test]
fn fault_plans_do_not_break_worker_invariance() {
    let golden = ShardedHost::new(1, 4, faulted_session).run();
    assert!(golden.all_terminated());
    for workers in [2, 4] {
        let report = ShardedHost::new(workers, 4, faulted_session).run();
        assert_eq!(
            report.fingerprints(),
            golden.fingerprints(),
            "fault-plan sessions must stay cell-for-cell identical between W=1 and W={workers}"
        );
        for s in 0..4 {
            assert_eq!(report.outputs[s], golden.outputs[s], "session {s} outputs diverged");
        }
        report.assert_conservation();
    }
}

#[test]
fn a_silenced_party_is_byzantine_not_awaited() {
    // `silence` marks the party Byzantine: the three honest parties of an
    // n = 4, f = 1 ABA still decide around it, and its (zero) traffic is
    // excluded from the honest books.
    let make = |s: usize| {
        let setup = SessionSetup::new(
            aba_parties(s),
            Box::new(RandomScheduler::new(0x51EE + s as u64)),
            BUDGET,
        );
        if s == 1 { setup.silence(0) } else { setup }
    };
    let report = ShardedHost::new(2, 2, make).run();
    for r in &report.sessions {
        assert_eq!(r.reason, StopReason::AllOutputs, "session {}", r.session);
    }
    report.assert_conservation();
    assert!(report.outputs[1][0].is_none(), "the silenced party never decides");
    for i in 1..N {
        assert!(report.outputs[1][i].is_some(), "honest party {i} decides");
    }
    assert!(agreement(&report.outputs[1]));
}
