//! Determinism goldens and behaviour tests for the sharded runtime.
//!
//! The central contract: per-session results of [`ShardedHost::run`] are a
//! pure function of each session's own setup — **cell-for-cell identical
//! for every worker count** `W`, and (while sessions exchange no cross-shard
//! traffic) identical to the opt-in parallel mode too.  Plus: per-session
//! budget attribution, admission policies, and the per-session conservation
//! law.

use std::sync::Arc;

use setupfree_aba::MmrAba;
use setupfree_core::coin::CoinProtocolFactory;
use setupfree_core::TrustedCoinFactory;
use setupfree_crypto::{generate_pki, Keyring, PartySecrets};
use setupfree_net::{BoxedParty, Envelope, PartyId, RandomScheduler, Sid, StopReason};
use setupfree_runtime::{MaxConcurrent, SessionSetup, ShardedHost, TokenBucket};

/// One trusted-coin ABA session: session `s` gets mixed inputs
/// `(i + s) % 2`, and — crucially for the `W`-independence of the golden —
/// its own scheduler seeded by `(base, session)` only.
fn trusted_aba_session(n: usize, session: usize, base_seed: u64, budget: u64) -> SessionSetup<Envelope, bool> {
    let parties: Vec<BoxedParty<Envelope, bool>> = (0..n)
        .map(|i| {
            Box::new(MmrAba::new(
                Sid::new("sharded-golden").derive("session", session),
                PartyId(i),
                n,
                (n - 1) / 3,
                (i + session).is_multiple_of(2),
                TrustedCoinFactory,
            )) as BoxedParty<Envelope, bool>
        })
        .collect();
    SessionSetup::new(
        parties,
        Box::new(RandomScheduler::new(base_seed ^ (session as u64).wrapping_mul(0x9e37_79b9))),
        budget,
    )
}

#[test]
fn per_session_results_identical_for_every_worker_count() {
    let n = 4;
    let k = 6;
    let run_with = |workers: usize| {
        ShardedHost::new(workers, k, move |s| trusted_aba_session(n, s, 0xD5, 1_000_000)).run()
    };
    let golden = run_with(1);
    assert!(golden.all_terminated());
    golden.assert_conservation();
    for workers in [2, 4] {
        let report = run_with(workers);
        assert_eq!(
            report.fingerprints(),
            golden.fingerprints(),
            "per-session (deliveries, rounds, sent, bytes) must be cell-for-cell identical \
             between W=1 and W={workers}"
        );
        // Outputs too: every party of every session decides the same value
        // regardless of the shard partition.
        for s in 0..k {
            assert_eq!(report.outputs[s], golden.outputs[s], "session {s} outputs diverged");
        }
        report.assert_conservation();
    }
    // The shard assignment itself follows the session-mod-W key.
    let w4 = run_with(4);
    for r in &w4.sessions {
        assert_eq!(r.shard, r.session % 4);
    }
}

#[test]
fn parallel_mode_matches_the_deterministic_merge() {
    let n = 4;
    let k = 5;
    let deterministic =
        ShardedHost::new(4, k, move |s| trusted_aba_session(n, s, 0xAB, 1_000_000)).run();
    let parallel =
        ShardedHost::new(4, k, move |s| trusted_aba_session(n, s, 0xAB, 1_000_000)).run_parallel();
    assert_eq!(parallel.fingerprints(), deterministic.fingerprints());
    for s in 0..k {
        assert_eq!(parallel.outputs[s], deterministic.outputs[s]);
    }
    parallel.assert_conservation();
}

#[test]
fn budget_exhaustion_is_attributed_to_the_offending_session() {
    let n = 4;
    let k = 4;
    let starved = 2usize;
    let report = ShardedHost::new(2, k, move |s| {
        // Session 2 gets a budget far below what an ABA needs; the others
        // are unconstrained.
        let budget = if s == starved { 40 } else { 1_000_000 };
        trusted_aba_session(n, s, 0x1CE, budget)
    })
    .run();
    assert_eq!(report.exhausted_sessions(), vec![starved], "only the starved session exhausts");
    for r in &report.sessions {
        if r.session == starved {
            assert_eq!(r.reason, StopReason::BudgetExhausted);
            assert_eq!(r.deliveries, 40, "it consumed exactly its own budget");
            assert!(r.metrics.in_flight > 0, "it still had traffic in flight");
        } else {
            assert_eq!(r.reason, StopReason::AllOutputs, "other sessions run to completion");
        }
    }
    // The books balance even with a budget-killed session in the mix.
    report.assert_conservation();
}

#[test]
fn zero_budget_session_closes_without_delivering_in_both_modes() {
    // The stop-order contract: outputs, quiescence, then the budget verdict
    // are checked BEFORE each delivery — exactly `Simulation::run`'s order —
    // so a zero-budget session exhausts with zero deliveries, identically in
    // the deterministic merge and the parallel workers.
    let n = 4;
    let k = 2;
    let make = move |s: usize| {
        let budget = if s == 1 { 0 } else { 1_000_000 };
        trusted_aba_session(n, s, 0xB0, budget)
    };
    let det = ShardedHost::new(2, k, make).run();
    let par = ShardedHost::new(2, k, make).run_parallel();
    for report in [&det, &par] {
        assert_eq!(report.sessions[1].reason, StopReason::BudgetExhausted);
        assert_eq!(report.sessions[1].deliveries, 0, "a zero budget buys zero deliveries");
        assert_eq!(report.sessions[0].reason, StopReason::AllOutputs);
        report.assert_conservation();
    }
    assert_eq!(det.fingerprints(), par.fingerprints());
}

#[test]
fn max_concurrent_admission_bounds_the_live_window() {
    let n = 4;
    let k = 8;
    let report = ShardedHost::new(2, k, move |s| trusted_aba_session(n, s, 0xFA, 1_000_000))
        .with_admission(MaxConcurrent(2))
        .run();
    assert!(report.all_terminated());
    assert!(
        report.peak_live_sessions <= 2,
        "MaxConcurrent(2) must bound the live-session window, saw {}",
        report.peak_live_sessions
    );
    // Admission order is the session order: later sessions still complete.
    assert_eq!(report.sessions.len(), k);
}

#[test]
fn token_bucket_admission_still_drains_the_whole_queue() {
    let n = 4;
    let k = 6;
    // A stingy bucket: one admission per 2000 deliveries after the initial
    // burst of two.  The liveness floor guarantees the queue still drains
    // even if the bucket runs dry while the host is idle.
    let report = ShardedHost::new(2, k, move |s| trusted_aba_session(n, s, 0x70, 1_000_000))
        .with_admission(TokenBucket::new(2, 2000))
        .run();
    assert!(report.all_terminated());
    assert!(report.peak_live_sessions <= k);
    report.assert_conservation();
}

#[test]
fn full_stack_sessions_shard_identically() {
    // The real thing, scaled down: two concurrent setup-free ABA sessions
    // (every round flips the real Coin), sharded vs single-shard.
    let n = 4;
    let k = 2;
    let (keyring, secrets) = generate_pki(n, 91);
    let keyring = Arc::new(keyring);
    let secrets: Vec<Arc<PartySecrets>> = secrets.into_iter().map(Arc::new).collect();
    let make = |keyring: Arc<Keyring>, secrets: Vec<Arc<PartySecrets>>| {
        move |s: usize| {
            let parties: Vec<BoxedParty<Envelope, bool>> = (0..n)
                .map(|i| {
                    let factory = CoinProtocolFactory::new(
                        PartyId(i),
                        keyring.clone(),
                        secrets[i].clone(),
                    );
                    Box::new(MmrAba::new(
                        Sid::new("sharded-full").derive("session", s),
                        PartyId(i),
                        n,
                        keyring.f(),
                        (i + s).is_multiple_of(2),
                        factory,
                    )) as BoxedParty<Envelope, bool>
                })
                .collect();
            SessionSetup::new(parties, Box::new(RandomScheduler::new(7 + s as u64)), 1 << 30)
        }
    };
    let w1 = ShardedHost::new(1, k, make(keyring.clone(), secrets.clone())).run();
    let w2 = ShardedHost::new(2, k, make(keyring, secrets)).run();
    assert!(w1.all_terminated());
    assert_eq!(w1.fingerprints(), w2.fingerprints());
    for s in 0..k {
        assert_eq!(w1.outputs[s], w2.outputs[s]);
        // Per-session agreement: all parties of a session decide together.
        let decided: Vec<bool> = w1.outputs[s].iter().map(|o| o.unwrap()).collect();
        assert!(decided.windows(2).all(|w| w[0] == w[1]), "session {s} agreement");
    }
}
