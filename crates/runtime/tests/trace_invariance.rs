//! Tracing under the sharded runtime: the per-session event streams are
//! part of the determinism contract, the admission trace records every
//! policy consultation, and a full-stack beacon session's stream
//! reconstructs into the protocol's span tree.
//!
//! The W-invariance pin matters because traces are recorded by
//! thread-local sinks that are suspended and resumed as the host
//! interleaves sessions on its workers: if any event leaked to the wrong
//! session's sink, or the interleave reordered a session's own events,
//! the streams would differ between worker counts.

use std::sync::Arc;

use setupfree_aba::{MmrAba, MmrAbaFactory};
use setupfree_app::beacon::{BeaconEpoch, RandomBeacon};
use setupfree_core::TrustedCoinFactory;
use setupfree_crypto::{generate_pki, Keyring, PartySecrets};
use setupfree_net::{BoxedParty, Envelope, PartyId, RandomScheduler, Sid};
use setupfree_obs::analysis::span_tree;
use setupfree_obs::{EventKind, Phase, NO_PARTY};
use setupfree_runtime::{SessionSetup, ShardedHost, TokenBucket};

fn trusted_aba_session(n: usize, session: usize, base_seed: u64) -> SessionSetup<Envelope, bool> {
    let parties: Vec<BoxedParty<Envelope, bool>> = (0..n)
        .map(|i| {
            Box::new(MmrAba::new(
                Sid::new("traced-sharded").derive("session", session),
                PartyId(i),
                n,
                (n - 1) / 3,
                (i + session).is_multiple_of(2),
                TrustedCoinFactory,
            )) as BoxedParty<Envelope, bool>
        })
        .collect();
    SessionSetup::new(
        parties,
        Box::new(RandomScheduler::new(base_seed ^ (session as u64).wrapping_mul(0x9e37_79b9))),
        1_000_000,
    )
}

#[test]
fn session_traces_are_identical_for_every_worker_count() {
    let n = 4;
    let k = 5;
    let run_with = |workers: usize, parallel: bool| {
        let host =
            ShardedHost::new(workers, k, move |s| trusted_aba_session(n, s, 0x7E)).with_tracing();
        if parallel { host.run_parallel() } else { host.run() }
    };
    let golden = run_with(1, false);
    assert!(golden.all_terminated());
    for (s, trace) in golden.session_traces.iter().enumerate() {
        assert!(!trace.is_empty(), "session {s} recorded no events");
        // Deterministic installs leave the wall clock off: the stream is a
        // pure function of the session, so it can be a golden at all.
        assert!(trace.iter().all(|e| e.wall_ns == 0), "session streams are wall-free");
    }
    for workers in [2, 4] {
        let report = run_with(workers, false);
        assert_eq!(
            report.session_traces, golden.session_traces,
            "W={workers} must replay every session's exact event stream"
        );
    }
    // The opt-in parallel mode records the same streams too — suspension
    // hands each session's sink to whichever worker thread resumes it.
    let parallel = run_with(4, true);
    assert_eq!(parallel.session_traces, golden.session_traces);
}

#[test]
fn untraced_runs_record_nothing() {
    let report = ShardedHost::new(2, 3, move |s| trusted_aba_session(4, s, 0x7E)).run();
    assert!(report.all_terminated());
    assert!(report.session_traces.iter().all(Vec::is_empty));
    assert!(report.admission_trace.is_empty());
}

#[test]
fn the_admission_trace_records_every_decision() {
    let n = 4;
    let k = 6;
    let report = ShardedHost::new(2, k, move |s| trusted_aba_session(n, s, 0xAD))
        .with_admission(TokenBucket::new(2, 2000))
        .with_tracing()
        .run();
    assert!(report.all_terminated());

    let decisions: Vec<_> = report
        .admission_trace
        .iter()
        .map(|e| match e.kind {
            EventKind::Admission { session, admitted, forced, tokens, live } => {
                assert_eq!(e.party, NO_PARTY, "admission is a host decision, not a party's");
                (session, admitted, forced, tokens, live)
            }
            ref other => panic!("non-admission event in the admission trace: {other:?}"),
        })
        .collect();

    // Every session was eventually admitted — by the policy's own verdict
    // or the liveness floor's forced override — in session order.
    let admitted: Vec<u32> =
        decisions.iter().filter(|d| d.1 || d.2).map(|d| d.0).collect();
    assert_eq!(admitted, (0..k as u32).collect::<Vec<_>>());
    // A stingy bucket (burst 2, one token per 2000 deliveries) cannot wave
    // everything through up front: the trace shows the policy saying no —
    // or the idle-host liveness floor overriding it.
    assert!(
        decisions.iter().any(|d| !d.1 || d.2),
        "a TokenBucket(2, 2000) over 6 sessions must defer or force at least once"
    );
    // Token-bucket decisions expose their token state.
    assert!(decisions.iter().all(|d| d.3.is_some()), "TokenBucket reports its tokens");
}

#[test]
fn a_full_stack_beacon_session_reconstructs_its_span_tree() {
    let n = 4;
    let epochs = 2u32;
    let (keyring, secrets) = generate_pki(n, 0xBEAC);
    let keyring = Arc::new(keyring);
    let secrets: Vec<Arc<PartySecrets>> = secrets.into_iter().map(Arc::new).collect();
    let make = {
        let keyring: Arc<Keyring> = keyring.clone();
        let secrets = secrets.clone();
        move |s: usize| {
            let parties: Vec<BoxedParty<Envelope, Vec<BeaconEpoch>>> = (0..n)
                .map(|i| {
                    let aba = MmrAbaFactory::new(PartyId(i), n, keyring.f(), TrustedCoinFactory);
                    Box::new(RandomBeacon::new(
                        Sid::new("traced-beacon").derive("session", s),
                        PartyId(i),
                        keyring.clone(),
                        secrets[i].clone(),
                        aba,
                        epochs,
                    )) as BoxedParty<Envelope, Vec<BeaconEpoch>>
                })
                .collect();
            SessionSetup::new(parties, Box::new(RandomScheduler::new(0xB0)), 1 << 30)
        }
    };
    let report = ShardedHost::new(1, 1, make).with_tracing().run();
    assert!(report.all_terminated());
    let trace = &report.session_traces[0];

    // One party's view of the run is a rooted span tree.
    let party0: Vec<_> = trace.iter().filter(|e| e.party == 0).cloned().collect();
    let tree = span_tree(&party0);
    assert!(tree.path.is_root());
    assert!(tree.decided.is_some(), "the root beacon machine decided");
    assert!(
        tree.children.len() >= epochs as usize,
        "at least one child span per epoch, saw {}",
        tree.children.len()
    );
    // The beacon nests elections, which nest coins, which nest sharing —
    // the tree must be deep, not a flat list of leaves.
    fn depth(node: &setupfree_obs::analysis::SpanNode) -> usize {
        1 + node.children.iter().map(depth).max().unwrap_or(0)
    }
    assert!(depth(&tree) >= 3, "full-stack spans nest, saw depth {}", depth(&tree));
    // Both epoch phases were marked on the root span.
    for epoch in 0..epochs {
        assert!(
            tree.phases.iter().any(|&(phase, info, _, _)| phase == Phase::BeaconEpoch && info == epoch),
            "epoch {epoch} phase mark missing from the root span"
        );
    }
    // Every span the tree synthesised is reachable by its own path.
    fn walk(node: &setupfree_obs::analysis::SpanNode, tree: &setupfree_obs::analysis::SpanNode) {
        assert!(tree.find(&node.path).is_some());
        for c in &node.children {
            assert!(c.path.starts_with(&node.path), "children extend their parent's path");
            walk(c, tree);
        }
    }
    walk(&tree, &tree);
}
