//! Sharded multi-session runtime.
//!
//! The paper's protocols are built to run *many concurrent instances* —
//! per-epoch beacons (§7.3), per-view VBAs (§7.1), `k` parallel BAs (the
//! concurrent-agreement regime of Cohen et al., arXiv:2312.14506).  PR 4's
//! `SessionHost` made that workload expressible (k sessions multiplexed
//! over one network by a leading path segment); this crate makes it
//! **operable at scale**:
//!
//! * [`ShardedHost`] — partitions sessions across `W` worker shards (shard
//!   key = the leading session segment of the instance path, i.e. session
//!   index mod `W`), each shard owning its sessions' complete execution
//!   state: party machines, adversarial scheduler, in-flight slab, delivery
//!   budget, metrics.  A deterministic round-robin shard-step merge keeps
//!   per-session results identical for every `W`
//!   ([`ShardedHost::run`]); [`ShardedHost::run_parallel`] is the opt-in
//!   mode that runs each shard on its own OS thread, with admitted work and
//!   reports flowing over bounded [`ShardQueue`]s.
//! * [`SessionMetrics`] / [`SessionReport`] — per-session accounting
//!   (sent/delivered/purged/in-flight/rounds) with the conservation law
//!   checked per session, and [`StopReason::BudgetExhausted`] attributed to
//!   the offending session instead of the whole run.
//! * [`AdmissionPolicy`] ([`Unlimited`] / [`MaxConcurrent`] /
//!   [`TokenBucket`]) — sessions are opened mid-run under a policy instead
//!   of pre-spawned, so pipelined beacon epochs become *admitted* sessions
//!   with a bounded live-session window.
//!
//! The per-session fairness adversaries this runtime is measured under
//! (`SessionTargetedDelayScheduler`, `SessionPartitionScheduler`) live in
//! `setupfree_net::scheduler`, built on the same Fenwick-arena scheduler
//! API as the party-level adversaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod host;
pub mod queue;
pub mod verify;

pub use admission::{AdmissionPolicy, MaxConcurrent, TokenBucket, Unlimited};
pub use host::{
    SessionFactory, SessionMetrics, SessionReport, SessionSetup, ShardedHost, ShardedRunReport,
    WorkerFailure,
};
pub use queue::ShardQueue;
pub use verify::{FlushReport, SessionVerdict, VerifyQueue, VerifyQueueStats};

// Re-exported so downstream code can name the session stop reason without a
// separate net import.
pub use setupfree_net::StopReason;
