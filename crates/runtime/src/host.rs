//! The worker-partitioned session host.
//!
//! [`ShardedHost`] runs `k` top-level protocol sessions partitioned across
//! `W` worker shards by session index (the leading session segment of the
//! mux's `InstancePath` is the shard key — shard `= session mod W`).  Where
//! PR 4's `SessionHost` multiplexed every session through **one** simulator
//! loop — one scheduler pool of all sessions' in-flight messages, one
//! aggregate `Metrics`, one global delivery budget — each sharded session
//! owns its complete execution state: party machines, adversarial
//! scheduler, in-flight slab, delivery budget and [`SessionMetrics`].  That
//! buys three things the single loop cannot offer:
//!
//! * **isolation** — a session that exhausts its budget is reported as
//!   [`StopReason::BudgetExhausted`] *for that session* while the rest run
//!   to completion, and per-session metrics make cross-session interference
//!   measurable instead of folded into one aggregate;
//! * **scalability** — scheduler pools stay session-sized (the single
//!   loop's pool grows with `k`, and its per-pick cost with `log` of that),
//!   and the shards can run on real OS threads ([`ShardedHost::run_parallel`]);
//! * **admission** — sessions are *opened* by an
//!   [`AdmissionPolicy`](crate::admission::AdmissionPolicy) instead of
//!   pre-spawned, so pipelined workloads (beacon epochs, view streams)
//!   become admitted sessions under a concurrency/rate policy.
//!
//! # Determinism contract
//!
//! [`ShardedHost::run`] merges the shards on one thread by a round-robin
//! shard step (shard 0, 1, …, W−1, repeat; within a shard, round-robin over
//! its live sessions), and every session's scheduler is seeded by the
//! caller per session.  Because top-level sessions exchange no cross-shard
//! traffic today, a session's delivery sequence is a pure function of its
//! own setup — so per-session results (deliveries, rounds, bytes, outputs)
//! are **identical for every `W`**, and identical to
//! [`ShardedHost::run_parallel`]'s.  The golden tests pin exactly this.
//! Host-level *telemetry* (e.g. [`ShardedRunReport::peak_live_sessions`])
//! depends on the merge interleaving and is excluded from the contract.
//! `run_parallel` is the opt-in mode: today it happens to preserve
//! per-session determinism because sessions are isolated; once cross-shard
//! traffic exists (shared seeding), only `run` will keep the guarantee.

use std::collections::VecDeque;
use std::fmt;

use setupfree_net::{BoxedParty, PartyId, Scheduler, Simulation, StopReason};
use setupfree_obs::{EventKind, TraceEvent, VecSink, NO_PARTY};

use crate::admission::{AdmissionPolicy, Unlimited};
use crate::queue::ShardQueue;

/// What closing a session yields: its report, its outputs, and its trace
/// stream (empty unless tracing is on).
type ClosedSession<O> = (SessionReport, Vec<Option<O>>, Vec<TraceEvent>);

/// Everything needed to open one session: the per-party state machines, the
/// session's own adversarial scheduler (seed it per session — that is what
/// makes per-session execution independent of the shard count), its
/// delivery budget, and the fault plan.
pub struct SessionSetup<M, O>
where
    M: setupfree_wire::Encode + setupfree_wire::Decode + Clone + fmt::Debug + 'static,
    O: Clone + fmt::Debug,
{
    /// Party `i`'s state machine for this session.
    pub parties: Vec<BoxedParty<M, O>>,
    /// The session's delivery scheduler.
    pub scheduler: Box<dyn Scheduler>,
    /// The session's delivery budget; exhausting it closes *this* session
    /// with [`StopReason::BudgetExhausted`] and touches no other.
    pub budget: u64,
    /// Parties marked Byzantine (their traffic is not charged as honest).
    pub byzantine: Vec<usize>,
    /// Parties crashed before the session starts.
    pub crashed_at_start: Vec<usize>,
    /// Parties wrapped by [`SessionSetup::crash_after`]: honest, but not
    /// awaited for termination (they will go silent mid-run).
    pub crash_faulty: Vec<usize>,
}

impl<M, O> SessionSetup<M, O>
where
    M: setupfree_wire::Encode + setupfree_wire::Decode + Clone + fmt::Debug + 'static,
    O: Clone + fmt::Debug + 'static,
{
    /// An all-honest session with the given parties, scheduler and budget.
    pub fn new(parties: Vec<BoxedParty<M, O>>, scheduler: Box<dyn Scheduler>, budget: u64) -> Self {
        SessionSetup {
            parties,
            scheduler,
            budget,
            byzantine: Vec::new(),
            crashed_at_start: Vec::new(),
            crash_faulty: Vec::new(),
        }
    }

    /// Wraps party `i` so it crashes (goes permanently silent) after
    /// `activations` deliveries — the testkit's mid-run crash fault, now
    /// composable with per-session schedulers: a fairness sweep can starve
    /// one session *and* crash a quorum member of another.  The party stays
    /// honest (pre-crash traffic is charged to the honest complexity, a
    /// pre-crash output joins the agreement quantifier); it is just no
    /// longer awaited for termination.
    pub fn crash_after(mut self, i: usize, activations: usize) -> Self {
        let machine =
            std::mem::replace(&mut self.parties[i], Box::new(setupfree_net::SilentParty::new()));
        self.parties[i] = Box::new(setupfree_net::CrashAfter::new(machine, activations));
        self.crash_faulty.push(i);
        self
    }

    /// Replaces party `i` with a fully silent Byzantine machine.
    pub fn silence(mut self, i: usize) -> Self {
        self.parties[i] = Box::new(setupfree_net::SilentParty::new());
        self.byzantine.push(i);
        self
    }
}

/// Builds the [`SessionSetup`] of session `index` (0-based, in admission
/// order).  `Sync` because [`ShardedHost::run_parallel`]'s workers build
/// their sessions on their own threads — party machines never cross a
/// thread boundary, only the factory reference does.
pub trait SessionFactory<M, O>: Sync
where
    M: setupfree_wire::Encode + setupfree_wire::Decode + Clone + fmt::Debug + 'static,
    O: Clone + fmt::Debug,
{
    /// Creates session `index`'s setup.
    fn build(&self, index: usize) -> SessionSetup<M, O>;
}

impl<M, O, F> SessionFactory<M, O> for F
where
    M: setupfree_wire::Encode + setupfree_wire::Decode + Clone + fmt::Debug + 'static,
    O: Clone + fmt::Debug,
    F: Fn(usize) -> SessionSetup<M, O> + Sync,
{
    fn build(&self, index: usize) -> SessionSetup<M, O> {
        self(index)
    }
}

/// The per-session accounting of one closed session — the sharded analogue
/// of the aggregate `Metrics`, plus the conservation law every session obeys
/// individually: `sent == delivered + purged + in_flight`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionMetrics {
    /// Message copies sent (honest and Byzantine senders).
    pub sent: u64,
    /// Messages sent by honest parties only.
    pub honest_messages: u64,
    /// Bytes sent by honest parties (exact wire encoding).
    pub honest_bytes: u64,
    /// Messages delivered.
    pub delivered: u64,
    /// Messages purged (receiver crashed).
    pub purged: u64,
    /// Messages still in flight when the session closed (non-zero only for
    /// budget-exhausted sessions).
    pub in_flight: u64,
    /// Asynchronous rounds until every awaited party output (`None` when the
    /// session closed without full termination).
    pub rounds: Option<u64>,
}

impl SessionMetrics {
    /// `true` when the session's books balance:
    /// `sent == delivered + purged + in_flight`.
    pub fn conserved(&self) -> bool {
        self.sent == self.delivered + self.purged + self.in_flight
    }
}

/// The outcome of one session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionReport {
    /// Session index (admission order).
    pub session: usize,
    /// The shard that executed it (`session mod workers`).
    pub shard: usize,
    /// Why the session stopped — a [`StopReason::BudgetExhausted`] here is
    /// attributed to exactly this session.
    pub reason: StopReason,
    /// Deliveries the session consumed from its own budget.
    pub deliveries: u64,
    /// The session's metrics.
    pub metrics: SessionMetrics,
}

/// One worker shard that died before finishing its sessions — the
/// structured form of what used to be a host-thread panic.  A poisoned
/// shard now fails the run *loudly* (the failure is in the report, and
/// [`ShardedRunReport::all_terminated`] is false) without aborting the
/// process: the healthy shards' sessions still report normally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerFailure {
    /// The shard whose worker thread died.
    pub shard: usize,
    /// The worker's panic payload (best-effort string form).
    pub message: String,
    /// Sessions assigned to this shard that never reported: the one that
    /// killed the worker, anything still queued in its inbox, and anything
    /// never admitted because the run aborted.
    pub lost_sessions: Vec<usize>,
}

impl fmt::Display for WorkerFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "worker shard {} died ({}); sessions {:?} never reported",
            self.shard, self.message, self.lost_sessions
        )
    }
}

/// The outcome of a whole sharded run.
#[derive(Debug, Clone)]
pub struct ShardedRunReport<O> {
    /// One report per *closed* session, indexed by session.  Complete
    /// (`sessions.len() == k`) exactly when [`ShardedRunReport::failures`]
    /// is empty; a failed parallel run reports only the sessions that
    /// closed before (or despite) the failure.
    pub sessions: Vec<SessionReport>,
    /// Every session's per-party outputs, indexed by session then party
    /// (empty for sessions lost to a worker failure).
    pub outputs: Vec<Vec<Option<O>>>,
    /// Maximum number of concurrently live sessions observed (merge-order
    /// dependent telemetry — *not* covered by the determinism contract).
    pub peak_live_sessions: usize,
    /// Worker shards that died mid-run (always empty for the deterministic
    /// [`ShardedHost::run`], which executes sessions on the host thread).
    pub failures: Vec<WorkerFailure>,
    /// Per-session trace streams (indexed by session; all empty unless the
    /// host was built [`ShardedHost::with_tracing`]).  Each stream is the
    /// session's own deterministic event sequence — identical for every
    /// worker count, the trace-level form of the determinism contract.
    pub session_traces: Vec<Vec<TraceEvent>>,
    /// The host's admission-decision trace ([`EventKind::Admission`]): one
    /// event per committed admission (and per first refusal of a delayed
    /// session), stamped with the host-level delivery clock.  Empty unless
    /// tracing is on.  Merge-order-dependent telemetry, like
    /// [`ShardedRunReport::peak_live_sessions`].
    pub admission_trace: Vec<TraceEvent>,
}

impl<O> ShardedRunReport<O> {
    /// Sessions that exhausted their delivery budget.
    pub fn exhausted_sessions(&self) -> Vec<usize> {
        self.sessions
            .iter()
            .filter(|r| r.reason == StopReason::BudgetExhausted)
            .map(|r| r.session)
            .collect()
    }

    /// `true` when no worker died and every session terminated with all
    /// awaited outputs.
    pub fn all_terminated(&self) -> bool {
        self.failures.is_empty()
            && self.sessions.iter().all(|r| r.reason == StopReason::AllOutputs)
    }

    /// Component-wise sum of every session's metrics (`rounds` is the
    /// maximum over terminated sessions) — comparable to the single-loop
    /// aggregate `Metrics`.
    pub fn aggregate(&self) -> SessionMetrics {
        let mut total = SessionMetrics::default();
        for r in &self.sessions {
            total.sent += r.metrics.sent;
            total.honest_messages += r.metrics.honest_messages;
            total.honest_bytes += r.metrics.honest_bytes;
            total.delivered += r.metrics.delivered;
            total.purged += r.metrics.purged;
            total.in_flight += r.metrics.in_flight;
            total.rounds = match (total.rounds, r.metrics.rounds) {
                (a, None) => a,
                (None, b) => b,
                (Some(a), Some(b)) => Some(a.max(b)),
            };
        }
        total
    }

    /// Panics unless every session's books balance individually and their
    /// sums match the aggregate — the per-session conservation law.
    pub fn assert_conservation(&self) {
        for r in &self.sessions {
            assert!(
                r.metrics.conserved(),
                "session {} books do not balance: {:?}",
                r.session,
                r.metrics
            );
        }
        let agg = self.aggregate();
        assert_eq!(agg.sent, agg.delivered + agg.purged + agg.in_flight);
    }

    /// The per-session fingerprint the determinism golden pins:
    /// `(session, deliveries, rounds, sent, honest_bytes)` must be
    /// cell-for-cell identical for every worker count and for the parallel
    /// mode.
    pub fn fingerprints(&self) -> Vec<(usize, u64, Option<u64>, u64, u64)> {
        self.sessions
            .iter()
            .map(|r| (r.session, r.deliveries, r.metrics.rounds, r.metrics.sent, r.metrics.honest_bytes))
            .collect()
    }
}

/// Capacity of each worker inbox in parallel mode: deep enough to keep a
/// worker busy while the coordinator does other work, small enough that
/// admission (and its policy) stays in control of how much work is
/// committed ahead.
const INBOX_CAPACITY: usize = 4;

/// One live session inside a shard (deterministic mode).
struct LiveSession<M, O>
where
    M: setupfree_wire::Encode + setupfree_wire::Decode + Clone + fmt::Debug + 'static,
    O: Clone + fmt::Debug,
{
    session: usize,
    sim: Simulation<M, O>,
    budget: u64,
    deliveries: u64,
    /// `true` when this session records a trace stream.
    traced: bool,
    /// The session's suspended trace sink while another session (or host
    /// code) runs on this thread; taken while the sink is installed.
    trace: Option<Box<dyn setupfree_obs::TraceSink>>,
}

/// Re-installs a suspended session trace sink on the current thread (no-op
/// for untraced sessions).
fn resume_trace<M, O>(slot: &mut LiveSession<M, O>)
where
    M: setupfree_wire::Encode + setupfree_wire::Decode + Clone + fmt::Debug + 'static,
    O: Clone + fmt::Debug,
{
    if let Some(sink) = slot.trace.take() {
        setupfree_obs::install(sink);
    }
}

/// Uninstalls the current thread's sink back into the session slot, so the
/// next session's deliveries cannot leak into this session's stream.
fn suspend_trace<M, O>(slot: &mut LiveSession<M, O>)
where
    M: setupfree_wire::Encode + setupfree_wire::Decode + Clone + fmt::Debug + 'static,
    O: Clone + fmt::Debug,
{
    if slot.traced {
        slot.trace = setupfree_obs::uninstall();
    }
}

/// Runs `k` sessions over `W` worker shards.  See the module docs for the
/// execution and determinism model.
pub struct ShardedHost<M, O, F>
where
    M: setupfree_wire::Encode + setupfree_wire::Decode + Clone + fmt::Debug + 'static,
    O: Clone + fmt::Debug,
    F: SessionFactory<M, O>,
{
    factory: F,
    sessions: usize,
    workers: usize,
    policy: Box<dyn AdmissionPolicy>,
    tracing: bool,
    _marker: std::marker::PhantomData<fn() -> (M, O)>,
}

impl<M, O, F> ShardedHost<M, O, F>
where
    M: setupfree_wire::Encode + setupfree_wire::Decode + Clone + fmt::Debug + 'static,
    O: Clone + fmt::Debug,
    F: SessionFactory<M, O>,
{
    /// Creates a host running `sessions` sessions over `workers` shards with
    /// unlimited admission (every session opened immediately — the PR 4
    /// pre-spawn behaviour).
    pub fn new(workers: usize, sessions: usize, factory: F) -> Self {
        assert!(workers > 0, "at least one worker shard is required");
        assert!(sessions > 0, "a host with zero sessions has nothing to run");
        ShardedHost {
            factory,
            sessions,
            workers,
            policy: Box::new(Unlimited),
            tracing: false,
            _marker: std::marker::PhantomData,
        }
    }

    /// Enables protocol tracing: every session records its own
    /// [`TraceEvent`] stream (surfaced as
    /// [`ShardedRunReport::session_traces`]) and the host records its
    /// admission decisions ([`ShardedRunReport::admission_trace`]).
    pub fn with_tracing(mut self) -> Self {
        self.tracing = true;
        self
    }

    /// Replaces the admission policy (see [`crate::admission`]).
    ///
    /// Liveness floor: when no session is live, one pending session is
    /// opened even against the policy's verdict — an empty host generates no
    /// deliveries, so a delivery-clocked policy could otherwise never refill
    /// and the run would wedge.
    pub fn with_admission(mut self, policy: impl AdmissionPolicy + 'static) -> Self {
        self.policy = Box::new(policy);
        self
    }

    /// Runs every session to its close on the current thread, merging the
    /// shards deterministically: one round-robin pass over the shards per
    /// step, one delivery from each shard's next live session per pass.
    pub fn run(mut self) -> ShardedRunReport<O> {
        let k = self.sessions;
        let w = self.workers;
        let mut shards: Vec<VecDeque<LiveSession<M, O>>> = (0..w).map(|_| VecDeque::new()).collect();
        let mut reports: Vec<Option<SessionReport>> = (0..k).map(|_| None).collect();
        let mut outputs: Vec<Vec<Option<O>>> = (0..k).map(|_| Vec::new()).collect();
        let mut session_traces: Vec<Vec<TraceEvent>> = (0..k).map(|_| Vec::new()).collect();
        let mut admission_trace: Vec<TraceEvent> = Vec::new();
        let mut next = 0usize;
        let mut active = 0usize;
        let mut peak = 0usize;
        let mut host_clock = 0u64;
        // Dedup refusal events: one per delayed session, not one per pass.
        let mut last_refused: Option<usize> = None;

        loop {
            // Admission: open pending sessions while the policy allows, with
            // the liveness floor of one forced admission on an idle host.
            while next < k {
                let verdict = self.policy.admit(active);
                let forced = !verdict && active == 0;
                if self.tracing && (verdict || forced || last_refused != Some(next)) {
                    admission_trace.push(admission_event(
                        next,
                        verdict,
                        forced,
                        self.policy.token_state(),
                        active,
                        host_clock,
                    ));
                }
                if !(verdict || forced) {
                    last_refused = Some(next);
                    break;
                }
                let session = open_session(&self.factory, next, self.tracing);
                shards[next % w].push_back(session);
                next += 1;
                active += 1;
                peak = peak.max(active);
            }
            if active == 0 {
                debug_assert!(next >= k, "idle host with pending sessions must force-admit");
                break;
            }
            // One deterministic merge pass: each shard steps its next live
            // session once (delivering one message or closing it).
            for shard in shards.iter_mut() {
                let Some(mut slot) = shard.pop_front() else { continue };
                // `step_with_budget` IS `Simulation::run`'s loop body, so a
                // session's close state (reason and delivery count, zero
                // budgets included) is identical to what `sim.run(budget)` —
                // the parallel workers' path — produces.
                resume_trace(&mut slot);
                let closed = slot.sim.step_with_budget(slot.deliveries, slot.budget);
                suspend_trace(&mut slot);
                if closed.is_none() {
                    slot.deliveries += 1;
                    host_clock += 1;
                    self.policy.on_delivery();
                }
                match closed {
                    None => shard.push_back(slot),
                    Some(reason) => {
                        let shard_id = slot.session % w;
                        let (report, outs, trace) = close_session(slot, reason, shard_id);
                        outputs[report.session] = outs;
                        session_traces[report.session] = trace;
                        reports[report.session] = Some(report);
                        active -= 1;
                        self.policy.on_session_closed();
                    }
                }
            }
        }

        ShardedRunReport {
            sessions: reports.into_iter().map(|r| r.expect("every session closed")).collect(),
            outputs,
            peak_live_sessions: peak,
            failures: Vec::new(),
            session_traces,
            admission_trace,
        }
    }

    /// Runs the shards on `W` OS threads — the opt-in parallel mode.
    ///
    /// Admitted session indices flow to the workers over bounded
    /// [`ShardQueue`]s and reports flow back the same way (the seam
    /// cross-shard protocol traffic would use in a shared-seeding future).
    /// Today's sessions are isolated, so per-session results still match
    /// [`ShardedHost::run`] bit-for-bit; the *guarantee*, however, is only
    /// made by the deterministic mode, which is why golden tests pin `run`.
    pub fn run_parallel(self) -> ShardedRunReport<O>
    where
        O: Send,
    {
        let k = self.sessions;
        let w = self.workers;
        let ShardedHost { factory, mut policy, tracing, .. } = self;
        let factory = &factory;
        let inboxes: Vec<ShardQueue<usize>> = (0..w).map(|_| ShardQueue::new(INBOX_CAPACITY)).collect();
        // Outbox capacity k: a worker can always hand its report back
        // without blocking, so the coordinator can never deadlock it.
        let outboxes: Vec<ShardQueue<ClosedSession<O>>> =
            (0..w).map(|_| ShardQueue::new(k)).collect();

        let mut reports: Vec<Option<SessionReport>> = (0..k).map(|_| None).collect();
        let mut outputs: Vec<Vec<Option<O>>> = (0..k).map(|_| Vec::new()).collect();
        let mut session_traces: Vec<Vec<TraceEvent>> = (0..k).map(|_| Vec::new()).collect();
        let mut admission_trace: Vec<TraceEvent> = Vec::new();
        let mut peak = 0usize;
        let mut host_clock = 0u64;

        let mut failures: Vec<WorkerFailure> = Vec::new();

        std::thread::scope(|scope| {
            let mut workers = Vec::with_capacity(w);
            for (shard, (inbox, outbox)) in inboxes.iter().zip(&outboxes).enumerate() {
                workers.push(scope.spawn(move || {
                    // The whole session lives and dies on this thread; only
                    // the index in and the report out cross threads.
                    while let Some(index) = inbox.pop() {
                        let mut slot = open_session(factory, index, tracing);
                        resume_trace(&mut slot);
                        let run = slot.sim.run(slot.budget);
                        suspend_trace(&mut slot);
                        slot.deliveries = run.deliveries;
                        let result = close_session(slot, run.reason, shard);
                        if outbox.push(result).is_err() {
                            break;
                        }
                    }
                }));
            }

            // Coordinator (this thread): admission + report collection.  It
            // never blocks on an inbox (try_push only), so worker and
            // coordinator can never wait on each other in a cycle.
            let mut next = 0usize;
            let mut active = 0usize;
            let mut closed = 0usize;
            let mut aborted = false;
            let mut last_refused: Option<usize> = None;
            while closed < k {
                // Room is checked BEFORE the policy is consulted: `admit`
                // commits the admission (a token bucket debits a token), so
                // asking it while the target inbox is full would burn
                // admissions without admitting anything.  The coordinator is
                // each inbox's only producer, so observed room cannot vanish
                // before the push.
                while next < k && inboxes[next % w].has_capacity() {
                    let verdict = policy.admit(active);
                    let forced = !verdict && active == 0;
                    if tracing && (verdict || forced || last_refused != Some(next)) {
                        admission_trace.push(admission_event(
                            next,
                            verdict,
                            forced,
                            policy.token_state(),
                            active,
                            host_clock,
                        ));
                    }
                    if !(verdict || forced) {
                        last_refused = Some(next);
                        break;
                    }
                    if inboxes[next % w].try_push(next).is_err() {
                        // Unreachable while the single-producer invariant
                        // holds; if it ever breaks, abort the run and report
                        // it as a failure instead of taking the process down.
                        aborted = true;
                        break;
                    }
                    next += 1;
                    active += 1;
                    peak = peak.max(active);
                }
                let mut got = false;
                for outbox in &outboxes {
                    while let Some((report, outs, trace)) = outbox.try_pop() {
                        policy.on_deliveries(report.deliveries);
                        host_clock += report.deliveries;
                        policy.on_session_closed();
                        outputs[report.session] = outs;
                        session_traces[report.session] = trace;
                        reports[report.session] = Some(report);
                        active -= 1;
                        closed += 1;
                        got = true;
                    }
                }
                if aborted {
                    break;
                }
                if !got {
                    // A worker only exits after its inbox closes (below), so
                    // one finishing early has panicked — its sessions will
                    // never report.  Stop admitting and collect what the
                    // healthy shards produced instead of spinning forever (or
                    // panicking the host thread, as this path once did).
                    if workers.iter().any(|h| h.is_finished()) {
                        aborted = true;
                        break;
                    }
                    std::thread::sleep(std::time::Duration::from_micros(200));
                }
            }
            // Closing the inboxes releases every healthy worker: each drains
            // its queued indices, runs them to close, and exits.
            for inbox in &inboxes {
                inbox.close();
            }
            // Join explicitly, consuming panic payloads so the scope does not
            // re-panic on drop.  A `Err` here is the worker's own panic; its
            // payload becomes the structured failure message.
            let mut dead: Vec<(usize, String)> = Vec::new();
            for (shard, handle) in workers.into_iter().enumerate() {
                if let Err(payload) = handle.join() {
                    let message = payload
                        .downcast_ref::<&str>()
                        .map(|s| (*s).to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "worker panicked with a non-string payload".into());
                    dead.push((shard, message));
                }
            }
            // Healthy workers kept reporting while we joined the dead one;
            // drain the outboxes once more so their sessions are not misread
            // as lost.
            for outbox in &outboxes {
                while let Some((report, outs, trace)) = outbox.try_pop() {
                    policy.on_deliveries(report.deliveries);
                    policy.on_session_closed();
                    outputs[report.session] = outs;
                    session_traces[report.session] = trace;
                    reports[report.session] = Some(report);
                }
            }
            for (shard, message) in dead {
                let lost_sessions = (0..k)
                    .filter(|&i| i % w == shard && reports[i].is_none())
                    .collect();
                failures.push(WorkerFailure { shard, message, lost_sessions });
            }
            if aborted && failures.is_empty() {
                // The abort came from the coordinator side (capacity-invariant
                // breach), not a worker panic; record it against shard `w` so
                // the report still fails loudly.
                let lost_sessions = (0..k).filter(|&i| reports[i].is_none()).collect();
                failures.push(WorkerFailure {
                    shard: w,
                    message: "single-producer inbox lost capacity".into(),
                    lost_sessions,
                });
            }
        });

        ShardedRunReport {
            sessions: reports.into_iter().flatten().collect(),
            outputs,
            peak_live_sessions: peak,
            failures,
            session_traces,
            admission_trace,
        }
    }
}

/// Builds one host-level admission-decision event (no party context; the
/// clock is the host-level delivery count at decision time).
fn admission_event(
    session: usize,
    admitted: bool,
    forced: bool,
    tokens: Option<u64>,
    live: usize,
    clock: u64,
) -> TraceEvent {
    TraceEvent {
        party: NO_PARTY,
        clock,
        wall_ns: 0,
        cause: None,
        kind: EventKind::Admission {
            session: session as u32,
            admitted,
            forced,
            tokens,
            live: live as u32,
        },
    }
}

/// Opens one session (shared by the deterministic merge and the parallel
/// workers, so the two paths can never diverge in how a session starts):
/// builds the setup, applies the fault plan, and activates every party.
/// Activation happens at admission because the deterministic merge checks
/// outputs/quiescence *before* each delivery — those checks must never
/// observe pre-activation state (an unactivated session has zero in-flight
/// messages and would be misread as quiescent).
fn open_session<M, O, F>(factory: &F, index: usize, traced: bool) -> LiveSession<M, O>
where
    M: setupfree_wire::Encode + setupfree_wire::Decode + Clone + fmt::Debug + 'static,
    O: Clone + fmt::Debug,
    F: SessionFactory<M, O>,
{
    let setup = factory.build(index);
    let mut sim = Simulation::new(setup.parties, setup.scheduler);
    for &i in &setup.byzantine {
        sim.mark_byzantine(PartyId(i));
    }
    for &i in &setup.crashed_at_start {
        sim.crash(PartyId(i));
    }
    for &i in &setup.crash_faulty {
        // Honest-but-crash-faulty: still in the agreement quantifier and
        // the honest communication metrics, just not awaited.
        sim.mark_crash_faulty(PartyId(i));
    }
    // The sink must be live across activation so the session's stream opens
    // with its activation events (and activation-time sends).
    let mut slot =
        LiveSession { session: index, sim, budget: setup.budget, deliveries: 0, traced, trace: None };
    if traced {
        setupfree_obs::install(Box::new(VecSink::new()));
    }
    slot.sim.activate_all();
    suspend_trace(&mut slot);
    slot
}

/// Finalises one session: refreshes its buffer telemetry, snapshots its
/// metrics and outputs, and frees its state (the runtime-level analogue of
/// router child GC — a completed session retains nothing).
fn close_session<M, O>(
    mut slot: LiveSession<M, O>,
    reason: StopReason,
    shard: usize,
) -> ClosedSession<O>
where
    M: setupfree_wire::Encode + setupfree_wire::Decode + Clone + fmt::Debug + 'static,
    O: Clone + fmt::Debug,
{
    let trace = slot.trace.take().map(|mut sink| sink.drain()).unwrap_or_default();
    slot.sim.refresh_buffer_telemetry();
    let m = slot.sim.metrics();
    debug_assert_eq!(slot.deliveries, m.delivered_messages, "budget units must be deliveries");
    let metrics = SessionMetrics {
        sent: m.honest_messages + m.byzantine_messages,
        honest_messages: m.honest_messages,
        honest_bytes: m.honest_bytes,
        delivered: m.delivered_messages,
        purged: m.purged_messages,
        in_flight: slot.sim.in_flight() as u64,
        rounds: m.rounds_to_all_outputs(),
    };
    let outputs = slot.sim.outputs();
    (
        SessionReport { session: slot.session, shard, reason, deliveries: slot.deliveries, metrics },
        outputs,
        trace,
    )
}
