//! Admission control: when may the host open the next queued session?
//!
//! PR 4's `SessionHost` pre-spawned every session at activation — `k`
//! pipelined beacon epochs meant `k` live elections from the first
//! delivery.  The sharded runtime instead holds a queue of *pending*
//! sessions and asks an [`AdmissionPolicy`] before opening each one, so a
//! pipelined workload becomes a stream of admitted sessions whose
//! concurrency (and therefore peak memory and cross-session interference)
//! is a policy knob rather than a workload constant.

/// Decides when the host may open the next pending session.
///
/// The host calls [`AdmissionPolicy::admit`] whenever it has a pending
/// session and a free moment (after start-up, after every session close,
/// and periodically between deliveries); a `true` return *consumes* the
/// admission (token-bucket policies debit a token).  [`AdmissionPolicy::on_delivery`]
/// ticks the policy's clock — the deterministic host calls it once per
/// delivered message, the parallel host once per message of every session
/// it closes (deliveries happen inside the workers there, so the clock
/// advances in session-sized batches).
pub trait AdmissionPolicy: Send {
    /// May a new session be opened, given `active` sessions currently live?
    /// Returning `true` commits the admission.
    fn admit(&mut self, active: usize) -> bool;

    /// Advances the policy clock by one delivered message.
    fn on_delivery(&mut self) {}

    /// Advances the policy clock by `n` delivered messages at once (the
    /// parallel host reports a whole session's deliveries when it closes).
    fn on_deliveries(&mut self, n: u64) {
        for _ in 0..n {
            self.on_delivery();
        }
    }

    /// A session closed (completed, quiesced, or exhausted its budget).
    fn on_session_closed(&mut self) {}

    /// The policy's current token balance, for policies that meter
    /// admissions (`None` for verdict-only policies) — recorded on the
    /// host's admission-decision trace events.
    fn token_state(&self) -> Option<u64> {
        None
    }
}

/// Admits every session immediately — the PR 4 pre-spawn behaviour.
#[derive(Debug, Clone, Default)]
pub struct Unlimited;

impl AdmissionPolicy for Unlimited {
    fn admit(&mut self, _active: usize) -> bool {
        true
    }

    fn on_deliveries(&mut self, _n: u64) {}
}

/// Caps the number of concurrently live sessions: session `j` opens once
/// fewer than `limit` sessions are live — the natural policy for pipelined
/// epochs (a sliding window over the epoch stream).
#[derive(Debug, Clone)]
pub struct MaxConcurrent(pub usize);

impl AdmissionPolicy for MaxConcurrent {
    fn admit(&mut self, active: usize) -> bool {
        active < self.0
    }

    fn on_deliveries(&mut self, _n: u64) {}
}

/// A token bucket over the delivery clock: an admission costs one token,
/// and one token is refilled every `refill_every` delivered messages (up to
/// `capacity`).  Rate-limits session churn under load: a burst of cheap
/// sessions cannot stampede the host faster than the network actually
/// drains traffic.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    capacity: u64,
    tokens: u64,
    refill_every: u64,
    clock: u64,
}

impl TokenBucket {
    /// Creates a bucket starting (and capped) at `capacity` tokens, refilled
    /// every `refill_every` deliveries.
    pub fn new(capacity: u64, refill_every: u64) -> Self {
        assert!(capacity > 0, "a zero-capacity bucket never admits anything");
        assert!(refill_every > 0, "refill interval must be positive");
        TokenBucket { capacity, tokens: capacity, refill_every, clock: 0 }
    }

    /// Tokens currently available.
    pub fn tokens(&self) -> u64 {
        self.tokens
    }
}

impl AdmissionPolicy for TokenBucket {
    fn admit(&mut self, _active: usize) -> bool {
        if self.tokens == 0 {
            return false;
        }
        self.tokens -= 1;
        true
    }

    fn on_delivery(&mut self) {
        self.clock += 1;
        if self.clock.is_multiple_of(self.refill_every) && self.tokens < self.capacity {
            self.tokens += 1;
        }
    }

    fn on_deliveries(&mut self, n: u64) {
        // Closed-form bulk tick (the parallel host reports millions of
        // deliveries per close; looping would be wasteful).
        let refills = (self.clock + n) / self.refill_every - self.clock / self.refill_every;
        self.clock += n;
        self.tokens = (self.tokens + refills).min(self.capacity);
    }

    fn token_state(&self) -> Option<u64> {
        Some(self.tokens)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_always_admits() {
        let mut p = Unlimited;
        assert!(p.admit(0));
        assert!(p.admit(10_000));
    }

    #[test]
    fn max_concurrent_caps_live_sessions() {
        let mut p = MaxConcurrent(2);
        assert!(p.admit(0));
        assert!(p.admit(1));
        assert!(!p.admit(2));
        p.on_session_closed();
        assert!(p.admit(1));
    }

    #[test]
    fn token_bucket_debits_and_refills_on_the_delivery_clock() {
        let mut p = TokenBucket::new(2, 10);
        assert!(p.admit(0));
        assert!(p.admit(0));
        assert!(!p.admit(0), "bucket empty");
        for _ in 0..9 {
            p.on_delivery();
            assert_eq!(p.tokens(), 0);
        }
        p.on_delivery();
        assert_eq!(p.tokens(), 1, "one token per refill interval");
        assert!(p.admit(0));
        // Refills never exceed the capacity.
        for _ in 0..100 {
            p.on_delivery();
        }
        assert_eq!(p.tokens(), 2);
    }
}
