//! Bounded blocking channels between the coordinator and the worker
//! shards — and, since the socket transport, between a peer's reader
//! threads and its driver.
//!
//! Each shard owns one inbox (coordinator → shard: admitted session
//! indices — and, in a shared-seeding future, cross-shard envelopes) and one
//! outbox (shard → coordinator: per-session reports); a socket-backed peer
//! owns one inbox fed by `n − 1` connection reader threads (MPSC).  All are
//! **bounded**: a producer that outruns its consumer blocks instead of
//! growing memory, so a misbehaving shard (or a flooding connection) can
//! never buffer the whole workload.  The implementation is a
//! `Mutex<VecDeque>` + two condvars — correct for any number of producers
//! and consumers (only [`ShardQueue::has_capacity`] assumes a single
//! producer), and the workspace's `forbid(unsafe_code)` rules out a
//! lock-free ring.
//!
//! The close protocol every consumer relies on: [`ShardQueue::close`] makes
//! producers fail fast (the item is handed back), while consumers still
//! drain the accepted backlog before seeing `None` — an accepted item is
//! never lost.  The property tests below pin exactly this under concurrent
//! producers and a mid-drain close.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

struct State<T> {
    queue: VecDeque<T>,
    closed: bool,
    /// Highest occupancy ever observed — how close the queue came to
    /// exercising backpressure.  Reported per peer inbox by the transport.
    high_water: usize,
}

/// A bounded blocking FIFO channel for one producer and one consumer.
pub struct ShardQueue<T> {
    capacity: usize,
    state: Mutex<State<T>>,
    /// Signalled when an item is pushed or the queue closes (wakes `pop`).
    filled: Condvar,
    /// Signalled when an item is popped or the queue closes (wakes `push`).
    drained: Condvar,
}

impl<T> ShardQueue<T> {
    /// Creates a queue holding at most `capacity` items.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "a zero-capacity queue can never transfer anything");
        ShardQueue {
            capacity,
            state: Mutex::new(State { queue: VecDeque::new(), closed: false, high_water: 0 }),
            filled: Condvar::new(),
            drained: Condvar::new(),
        }
    }

    /// Blocks until there is room, then enqueues `item`.  Returns the item
    /// back as an `Err` when the queue has been closed.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut state = self.state.lock().expect("queue lock poisoned");
        while state.queue.len() >= self.capacity && !state.closed {
            state = self.drained.wait(state).expect("queue lock poisoned");
        }
        if state.closed {
            return Err(item);
        }
        state.queue.push_back(item);
        state.high_water = state.high_water.max(state.queue.len());
        drop(state);
        self.filled.notify_one();
        Ok(())
    }

    /// Enqueues without blocking; `Err` when full or closed.
    pub fn try_push(&self, item: T) -> Result<(), T> {
        let mut state = self.state.lock().expect("queue lock poisoned");
        if state.closed || state.queue.len() >= self.capacity {
            return Err(item);
        }
        state.queue.push_back(item);
        state.high_water = state.high_water.max(state.queue.len());
        drop(state);
        self.filled.notify_one();
        Ok(())
    }

    /// Blocks until an item arrives; `None` once the queue is closed *and*
    /// drained.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("queue lock poisoned");
        loop {
            if let Some(item) = state.queue.pop_front() {
                drop(state);
                self.drained.notify_one();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.filled.wait(state).expect("queue lock poisoned");
        }
    }

    /// Dequeues without blocking; `None` when currently empty (closed or
    /// not).
    pub fn try_pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("queue lock poisoned");
        let item = state.queue.pop_front();
        if item.is_some() {
            drop(state);
            self.drained.notify_one();
        }
        item
    }

    /// Closes the queue: producers fail fast, consumers drain the backlog
    /// and then see `None`.
    pub fn close(&self) {
        let mut state = self.state.lock().expect("queue lock poisoned");
        state.closed = true;
        drop(state);
        self.filled.notify_all();
        self.drained.notify_all();
    }

    /// Number of items currently queued.
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue lock poisoned").queue.len()
    }

    /// `true` when a `try_push` would currently succeed.  Only meaningful to
    /// the queue's single producer: the consumer can only *make* room, so a
    /// `true` here cannot be invalidated before the producer's next push.
    pub fn has_capacity(&self) -> bool {
        let state = self.state.lock().expect("queue lock poisoned");
        !state.closed && state.queue.len() < self.capacity
    }

    /// `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Highest occupancy the queue ever reached — `capacity` here means
    /// producers actually blocked (or, for `try_push` callers, items were
    /// refused) at least once.
    pub fn high_water(&self) -> usize {
        self.state.lock().expect("queue lock poisoned").high_water
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_and_capacity() {
        let q = ShardQueue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert_eq!(q.try_push(3), Err(3), "bounded: a full queue rejects");
        assert_eq!(q.try_pop(), Some(1));
        assert!(q.try_push(3).is_ok());
        assert_eq!(q.try_pop(), Some(2));
        assert_eq!(q.try_pop(), Some(3));
        assert_eq!(q.try_pop(), None);
        assert_eq!(q.high_water(), 2, "the high-water mark survives the drain");
    }

    #[test]
    fn close_drains_then_ends() {
        let q = ShardQueue::new(4);
        q.push(7).unwrap();
        q.close();
        assert_eq!(q.push(8), Err(8), "closed queues reject producers");
        assert_eq!(q.pop(), Some(7), "the backlog is still drained");
        assert_eq!(q.pop(), None, "then the consumer sees the end");
    }

    #[test]
    fn blocking_push_wakes_on_pop() {
        let q = Arc::new(ShardQueue::new(1));
        q.push(0u32).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push(1).is_ok())
        };
        // The producer blocks on the full queue until we make room.
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(q.pop(), Some(0));
        assert!(producer.join().unwrap());
        assert_eq!(q.pop(), Some(1));
    }

    #[test]
    fn blocking_pop_wakes_on_close() {
        let q: Arc<ShardQueue<u32>> = Arc::new(ShardQueue::new(1));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(consumer.join().unwrap(), None);
    }

    // -----------------------------------------------------------------
    // Close/contention semantics under concurrent producers — the
    // transport's peer inboxes are MPSC ShardQueues torn down by `close`
    // mid-run, so these properties are load-bearing beyond the sharded
    // host's SPSC use:
    //
    //   * the run never deadlocks (producers blocked on a full queue are
    //     woken by `close` and fail fast);
    //   * an item whose `push` returned `Ok` is *always* delivered to the
    //     consumer, even when the close lands mid-drain;
    //   * an item whose `push` returned `Err` is handed back intact.
    // -----------------------------------------------------------------

    use proptest::prelude::*;

    /// Runs `producers` threads pushing `per_producer` tagged items each
    /// into a queue of `capacity`, closes the queue after the consumer has
    /// drained `close_after` items, then drains the backlog.  Returns
    /// `(accepted, rejected, popped)` as sorted multisets of `(producer,
    /// seq)` tags.
    #[allow(clippy::type_complexity)]
    fn contention_run(
        producers: usize,
        capacity: usize,
        per_producer: usize,
        close_after: usize,
    ) -> (Vec<(usize, usize)>, Vec<(usize, usize)>, Vec<(usize, usize)>) {
        let q: Arc<ShardQueue<(usize, usize)>> = Arc::new(ShardQueue::new(capacity));
        let handles: Vec<_> = (0..producers)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut accepted = Vec::new();
                    let mut rejected = Vec::new();
                    for seq in 0..per_producer {
                        match q.push((p, seq)) {
                            Ok(()) => accepted.push((p, seq)),
                            Err(item) => {
                                assert_eq!(item, (p, seq), "a rejected item is handed back intact");
                                rejected.push(item);
                            }
                        }
                    }
                    (accepted, rejected)
                })
            })
            .collect();

        // Consumer (this thread): drain `close_after` items, close mid-drain,
        // then drain whatever backlog was accepted before the close.
        // `close_after <= total` (the callers clamp), and every pre-close
        // push eventually succeeds, so the blocking pops below cannot wedge.
        let mut popped = Vec::new();
        for _ in 0..close_after {
            popped.push(q.pop().expect("pre-close items must arrive"));
        }
        q.close();
        while let Some(item) = q.pop() {
            popped.push(item);
        }
        assert_eq!(q.pop(), None, "a closed drained queue stays ended");

        let (mut accepted, mut rejected) = (Vec::new(), Vec::new());
        for h in handles {
            let (a, r) = h.join().expect("producer thread must not panic");
            accepted.extend(a);
            rejected.extend(r);
        }
        accepted.sort_unstable();
        rejected.sort_unstable();
        popped.sort_unstable();
        (accepted, rejected, popped)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn concurrent_producers_and_mid_drain_close_lose_nothing(
            producers in 1usize..5,
            capacity in 1usize..5,
            per_producer in 1usize..32,
            close_fraction in 0usize..33,
        ) {
            let total = producers * per_producer;
            let close_after = (close_fraction * total / 32).min(total);
            let (accepted, rejected, popped) =
                contention_run(producers, capacity, per_producer, close_after);
            // Conservation: every push either reached the consumer or came
            // back to its producer — nothing vanished, nothing duplicated.
            prop_assert_eq!(&popped, &accepted);
            prop_assert_eq!(accepted.len() + rejected.len(), total);
            // The consumer saw at least what it drained before closing.
            prop_assert!(popped.len() >= close_after);
        }
    }

    #[test]
    fn producers_blocked_on_a_full_queue_are_released_by_close() {
        // Deterministic worst case: capacity 1, many producers, immediate
        // close — every producer is parked on the `drained` condvar when the
        // close lands, and all of them must come back with their item.
        let (accepted, rejected, popped) = contention_run(4, 1, 16, 0);
        assert_eq!(popped, accepted);
        assert_eq!(accepted.len() + rejected.len(), 64);
    }
}
