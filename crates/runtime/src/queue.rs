//! Bounded SPSC-style channels between the coordinator and the worker
//! shards.
//!
//! Each shard owns one inbox (coordinator → shard: admitted session
//! indices — and, in a shared-seeding future, cross-shard envelopes) and one
//! outbox (shard → coordinator: per-session reports).  Both are **bounded**:
//! a producer that outruns its consumer blocks instead of growing memory,
//! so a misbehaving shard can never buffer the whole workload.  The
//! implementation is a `Mutex<VecDeque>` + two condvars — each endpoint has
//! exactly one producer and one consumer (SPSC), so there is no contention
//! to optimise away, and the workspace's `forbid(unsafe_code)` rules out a
//! lock-free ring.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

struct State<T> {
    queue: VecDeque<T>,
    closed: bool,
}

/// A bounded blocking FIFO channel for one producer and one consumer.
pub struct ShardQueue<T> {
    capacity: usize,
    state: Mutex<State<T>>,
    /// Signalled when an item is pushed or the queue closes (wakes `pop`).
    filled: Condvar,
    /// Signalled when an item is popped or the queue closes (wakes `push`).
    drained: Condvar,
}

impl<T> ShardQueue<T> {
    /// Creates a queue holding at most `capacity` items.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "a zero-capacity queue can never transfer anything");
        ShardQueue {
            capacity,
            state: Mutex::new(State { queue: VecDeque::new(), closed: false }),
            filled: Condvar::new(),
            drained: Condvar::new(),
        }
    }

    /// Blocks until there is room, then enqueues `item`.  Returns the item
    /// back as an `Err` when the queue has been closed.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut state = self.state.lock().expect("queue lock poisoned");
        while state.queue.len() >= self.capacity && !state.closed {
            state = self.drained.wait(state).expect("queue lock poisoned");
        }
        if state.closed {
            return Err(item);
        }
        state.queue.push_back(item);
        drop(state);
        self.filled.notify_one();
        Ok(())
    }

    /// Enqueues without blocking; `Err` when full or closed.
    pub fn try_push(&self, item: T) -> Result<(), T> {
        let mut state = self.state.lock().expect("queue lock poisoned");
        if state.closed || state.queue.len() >= self.capacity {
            return Err(item);
        }
        state.queue.push_back(item);
        drop(state);
        self.filled.notify_one();
        Ok(())
    }

    /// Blocks until an item arrives; `None` once the queue is closed *and*
    /// drained.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("queue lock poisoned");
        loop {
            if let Some(item) = state.queue.pop_front() {
                drop(state);
                self.drained.notify_one();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.filled.wait(state).expect("queue lock poisoned");
        }
    }

    /// Dequeues without blocking; `None` when currently empty (closed or
    /// not).
    pub fn try_pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("queue lock poisoned");
        let item = state.queue.pop_front();
        if item.is_some() {
            drop(state);
            self.drained.notify_one();
        }
        item
    }

    /// Closes the queue: producers fail fast, consumers drain the backlog
    /// and then see `None`.
    pub fn close(&self) {
        let mut state = self.state.lock().expect("queue lock poisoned");
        state.closed = true;
        drop(state);
        self.filled.notify_all();
        self.drained.notify_all();
    }

    /// Number of items currently queued.
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue lock poisoned").queue.len()
    }

    /// `true` when a `try_push` would currently succeed.  Only meaningful to
    /// the queue's single producer: the consumer can only *make* room, so a
    /// `true` here cannot be invalidated before the producer's next push.
    pub fn has_capacity(&self) -> bool {
        let state = self.state.lock().expect("queue lock poisoned");
        !state.closed && state.queue.len() < self.capacity
    }

    /// `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_and_capacity() {
        let q = ShardQueue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert_eq!(q.try_push(3), Err(3), "bounded: a full queue rejects");
        assert_eq!(q.try_pop(), Some(1));
        assert!(q.try_push(3).is_ok());
        assert_eq!(q.try_pop(), Some(2));
        assert_eq!(q.try_pop(), Some(3));
        assert_eq!(q.try_pop(), None);
    }

    #[test]
    fn close_drains_then_ends() {
        let q = ShardQueue::new(4);
        q.push(7).unwrap();
        q.close();
        assert_eq!(q.push(8), Err(8), "closed queues reject producers");
        assert_eq!(q.pop(), Some(7), "the backlog is still drained");
        assert_eq!(q.pop(), None, "then the consumer sees the end");
    }

    #[test]
    fn blocking_push_wakes_on_pop() {
        let q = Arc::new(ShardQueue::new(1));
        q.push(0u32).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push(1).is_ok())
        };
        // The producer blocks on the full queue until we make room.
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(q.pop(), Some(0));
        assert!(producer.join().unwrap());
        assert_eq!(q.pop(), Some(1));
    }

    #[test]
    fn blocking_pop_wakes_on_close() {
        let q: Arc<ShardQueue<u32>> = Arc::new(ShardQueue::new(1));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(consumer.join().unwrap(), None);
    }
}
