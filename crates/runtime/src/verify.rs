//! Cross-session batch-verification queue.
//!
//! PR 2 batched the expensive RLC checks *within* one protocol event: a
//! seeding leader verifies its `n` contribution transcripts in one
//! [`verify_single_dealer_batch`] call, an AVSS party checks a quorum of
//! Pedersen openings in one
//! [`PedersenCommitment::verify_shares_batch`] call.  Each such call still
//! pays the batch's *fixed* algebraic cost — for the PVSS batch that is
//! `2n + 2` pairings and the column multi-exponentiations, regardless of how
//! many transcripts share them.  A shard that owns `k` concurrent sessions
//! over the same PKI therefore pays that fixed cost `k` times per step even
//! though the checks are mutually independent and combinable.
//!
//! [`VerifyQueue`] lifts the batching one level up: sessions *enqueue* their
//! pending checks (tagged with their session index) as they accumulate, and
//! the shard flushes the queue once per shard step —
//!
//! * all pending single-dealer PVSS transcripts across all sessions go
//!   through **one** [`verify_single_dealer_batch`] call (one set of
//!   pairings and column accumulators for the whole shard), and
//! * all pending Pedersen opening groups go through **one**
//!   [`verify_share_groups`] cross-group RLC (one fixed-base commit and one
//!   multi-exponentiation spanning every session's commitment).
//!
//! # Per-session failure attribution
//!
//! A combined check failing must not fail the whole shard.  Both underlying
//! primitives attribute hierarchically — the cross-session combination
//! falling back to per-transcript (resp. per-group, then per-share) exact
//! checks — so the [`FlushReport`] carries one verdict per enqueued entry,
//! still tagged with the session that enqueued it.  Only the sessions whose
//! entries are bad see `false` flags; honest sessions sharing the flush are
//! unaffected ([`FlushReport::sessions_with_failures`] lists the offenders).
//!
//! # Requirements
//!
//! All enqueued checks must be relative to **one PKI** (the same
//! `PvssParams`/key slices), which is exactly the k-parallel-sessions regime
//! the sharded host runs, and the flush entropy must be a verifier secret
//! (e.g. `SigningKey::batch_entropy`), unknown to whoever crafted the
//! transcripts — the same soundness argument as the per-session batches.

use setupfree_crypto::pedersen::{verify_share_groups, PedersenCommitment, ShareGroup};
use setupfree_crypto::pvss::{verify_single_dealer_batch, PvssEncryptionKey, PvssParams, PvssScript};
use setupfree_crypto::sig::VerifyingKey;
use setupfree_crypto::Scalar;

/// One session's pending single-dealer PVSS transcript checks.
#[derive(Debug, Clone)]
struct PendingScripts {
    session: usize,
    /// `(dealer, transcript)` pairs, as [`verify_single_dealer_batch`] takes
    /// them.
    entries: Vec<(usize, PvssScript)>,
}

/// One session's pending Pedersen opening checks against one commitment.
#[derive(Debug, Clone)]
struct PendingShares {
    session: usize,
    commitment: PedersenCommitment,
    /// `(evaluation point, a, b)` claimed openings.
    shares: Vec<(usize, Scalar, Scalar)>,
}

/// Verdicts for one enqueued batch: the session that enqueued it and one
/// flag per entry, in enqueue order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionVerdict {
    /// The session the entries belong to.
    pub session: usize,
    /// One flag per enqueued entry (transcript or share), aligned with the
    /// enqueue call.
    pub flags: Vec<bool>,
}

impl SessionVerdict {
    /// `true` when every entry of this batch verified.
    pub fn all_ok(&self) -> bool {
        self.flags.iter().all(|f| *f)
    }
}

/// The outcome of one [`VerifyQueue::flush`].
#[derive(Debug, Clone, Default)]
pub struct FlushReport {
    /// Per-session verdicts of the PVSS transcript checks, in enqueue order.
    pub scripts: Vec<SessionVerdict>,
    /// Per-session verdicts of the Pedersen opening checks, in enqueue
    /// order.
    pub shares: Vec<SessionVerdict>,
    /// Total entries (transcripts + shares) this flush checked.
    pub entries: usize,
}

impl FlushReport {
    /// Sessions that contributed at least one failing entry — the sessions a
    /// host would fail (or whose offending transcript a protocol would
    /// discard) while every other session proceeds.
    pub fn sessions_with_failures(&self) -> Vec<usize> {
        let mut bad: Vec<usize> = self
            .scripts
            .iter()
            .chain(self.shares.iter())
            .filter(|v| !v.all_ok())
            .map(|v| v.session)
            .collect();
        bad.sort_unstable();
        bad.dedup();
        bad
    }

    /// `true` when every entry across every session verified.
    pub fn all_ok(&self) -> bool {
        self.scripts.iter().chain(self.shares.iter()).all(SessionVerdict::all_ok)
    }
}

/// Counters describing a queue's lifetime activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VerifyQueueStats {
    /// Entries enqueued so far.
    pub enqueued: u64,
    /// Flushes performed.
    pub flushes: u64,
    /// Underlying batch calls a per-session strategy would have made for the
    /// same entries (one per enqueue) minus the calls actually made (at most
    /// two per flush) — the number of fixed batch costs amortised away.
    pub batches_saved: u64,
}

/// Accumulates the pending RLC checks of the `k` sessions one shard owns and
/// flushes them in one cross-session batched check per shard step.  See the
/// module docs for the model.
#[derive(Debug, Default)]
pub struct VerifyQueue {
    scripts: Vec<PendingScripts>,
    shares: Vec<PendingShares>,
    stats: VerifyQueueStats,
}

impl VerifyQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueues session `session`'s pending single-dealer transcript checks
    /// (what its seeding leader would have passed to
    /// [`verify_single_dealer_batch`] directly).
    pub fn enqueue_scripts(&mut self, session: usize, entries: Vec<(usize, PvssScript)>) {
        self.stats.enqueued += entries.len() as u64;
        self.scripts.push(PendingScripts { session, entries });
    }

    /// Enqueues session `session`'s pending Pedersen opening checks against
    /// `commitment` (what an AVSS party would have passed to
    /// `verify_shares_batch` directly).
    pub fn enqueue_shares(
        &mut self,
        session: usize,
        commitment: PedersenCommitment,
        shares: Vec<(usize, Scalar, Scalar)>,
    ) {
        self.stats.enqueued += shares.len() as u64;
        self.shares.push(PendingShares { session, commitment, shares });
    }

    /// Entries currently pending.
    pub fn pending(&self) -> usize {
        self.scripts.iter().map(|p| p.entries.len()).sum::<usize>()
            + self.shares.iter().map(|p| p.shares.len()).sum::<usize>()
    }

    /// Lifetime counters.
    pub fn stats(&self) -> VerifyQueueStats {
        self.stats
    }

    /// Flushes every pending check in (at most) one cross-session PVSS batch
    /// and one cross-session share-group batch, returning per-session
    /// verdicts.  `entropy` must be a verifier secret; `params`/`eks`/`vks`
    /// are the shard's common PKI.
    pub fn flush(
        &mut self,
        params: &PvssParams,
        eks: &[PvssEncryptionKey],
        vks: &[VerifyingKey],
        entropy: &[u8],
    ) -> FlushReport {
        let script_batches = std::mem::take(&mut self.scripts);
        let share_batches = std::mem::take(&mut self.shares);
        let mut report = FlushReport::default();
        if script_batches.is_empty() && share_batches.is_empty() {
            return report;
        }
        self.stats.flushes += 1;
        let pending_batches = (script_batches.len() + share_batches.len()) as u64;

        // One verify_single_dealer_batch call over the concatenation; the
        // primitive's hierarchical fallback attributes failures to exact
        // transcripts, which we split back per session.
        if !script_batches.is_empty() {
            let flat: Vec<(usize, &PvssScript)> = script_batches
                .iter()
                .flat_map(|p| p.entries.iter().map(|(d, s)| (*d, s)))
                .collect();
            report.entries += flat.len();
            let flags = verify_single_dealer_batch(params, eks, vks, &flat, entropy);
            let mut cursor = flags.into_iter();
            for batch in &script_batches {
                report.scripts.push(SessionVerdict {
                    session: batch.session,
                    flags: cursor.by_ref().take(batch.entries.len()).collect(),
                });
            }
        }

        // One verify_share_groups call spanning every session's commitment.
        if !share_batches.is_empty() {
            let groups: Vec<ShareGroup<'_>> =
                share_batches.iter().map(|p| (&p.commitment, p.shares.as_slice())).collect();
            report.entries += groups.iter().map(|(_, s)| s.len()).sum::<usize>();
            let grouped = verify_share_groups(&groups, entropy);
            for (batch, flags) in share_batches.iter().zip(grouped) {
                report.shares.push(SessionVerdict { session: batch.session, flags });
            }
        }

        let calls_made =
            u64::from(!report.scripts.is_empty()) + u64::from(!report.shares.is_empty());
        self.stats.batches_saved += pending_batches - calls_made;
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use setupfree_crypto::generate_pki;

    fn pki(n: usize, seed: u64) -> (setupfree_crypto::Keyring, Vec<setupfree_crypto::PartySecrets>) {
        generate_pki(n, seed)
    }

    fn contribution(
        keyring: &setupfree_crypto::Keyring,
        secrets: &setupfree_crypto::PartySecrets,
        dealer: usize,
        salt: u64,
    ) -> PvssScript {
        let params = PvssParams { n: keyring.n(), degree: keyring.f() };
        let mut rng = StdRng::seed_from_u64(salt);
        PvssScript::deal(
            &params,
            &keyring.pvss_eks(),
            &secrets.sig,
            dealer,
            Scalar::from_u64(1000 + salt),
            &mut rng,
        )
    }

    #[test]
    fn cross_session_flush_matches_per_session_batches() {
        let n = 4;
        let (keyring, secrets) = pki(n, 21);
        let params = PvssParams { n, degree: keyring.f() };
        let eks = keyring.pvss_eks();
        let vks = keyring.sig_keys();
        let entropy = secrets[0].pvss_dk.batch_entropy();

        let mut queue = VerifyQueue::new();
        for session in 0..3usize {
            let entries: Vec<(usize, PvssScript)> = (0..n)
                .map(|d| (d, contribution(&keyring, &secrets[d], d, (session * n + d) as u64)))
                .collect();
            queue.enqueue_scripts(session, entries);
        }
        assert_eq!(queue.pending(), 3 * n);
        let report = queue.flush(&params, &eks, &vks, &entropy);
        assert_eq!(queue.pending(), 0);
        assert!(report.all_ok(), "honest transcripts must verify: {report:?}");
        assert_eq!(report.scripts.len(), 3);
        assert!(report.scripts.iter().all(|v| v.flags == vec![true; n]));
        assert!(report.sessions_with_failures().is_empty());
        // 3 per-session batch calls collapsed into 1.
        assert_eq!(queue.stats().batches_saved, 2);
        assert_eq!(queue.stats().flushes, 1);
    }

    #[test]
    fn bad_transcript_fails_only_its_session() {
        let n = 4;
        let (keyring, secrets) = pki(n, 22);
        let params = PvssParams { n, degree: keyring.f() };
        let eks = keyring.pvss_eks();
        let vks = keyring.sig_keys();
        let entropy = secrets[1].pvss_dk.batch_entropy();

        let mut queue = VerifyQueue::new();
        let honest: Vec<(usize, PvssScript)> =
            (0..n).map(|d| (d, contribution(&keyring, &secrets[d], d, d as u64))).collect();
        queue.enqueue_scripts(0, honest);
        // Session 1's dealer-2 transcript claims the wrong dealer index: the
        // signature of knowledge cannot match.
        let mut tampered: Vec<(usize, PvssScript)> =
            (0..n).map(|d| (d, contribution(&keyring, &secrets[d], d, 100 + d as u64))).collect();
        let stolen = tampered[2].1.clone();
        tampered[3] = (3, stolen);
        queue.enqueue_scripts(1, tampered);

        let report = queue.flush(&params, &eks, &vks, &entropy);
        assert_eq!(report.sessions_with_failures(), vec![1]);
        assert_eq!(report.scripts[0].flags, vec![true; n]);
        assert_eq!(report.scripts[1].flags, vec![true, true, true, false]);
    }

    #[test]
    fn share_groups_flush_attributes_bad_openings() {
        use setupfree_crypto::Polynomial;
        let mut rng = StdRng::seed_from_u64(7);
        let degree = 2;
        let mut queue = VerifyQueue::new();
        for session in 0..3usize {
            let a = Polynomial::random(degree, &mut rng);
            let b = Polynomial::random(degree, &mut rng);
            let commitment = PedersenCommitment::commit(&a, &b);
            let mut shares: Vec<(usize, Scalar, Scalar)> =
                (1..=4).map(|i| (i, a.eval_at_index(i), b.eval_at_index(i))).collect();
            if session == 2 {
                shares[1].1 += Scalar::one(); // corrupt one opening
            }
            queue.enqueue_shares(session, commitment, shares);
        }
        let (keyring, _) = pki(4, 23);
        let params = PvssParams { n: 4, degree };
        let report = queue.flush(&params, &keyring.pvss_eks(), &keyring.sig_keys(), b"test-entropy");
        assert_eq!(report.sessions_with_failures(), vec![2]);
        assert!(report.shares[0].all_ok() && report.shares[1].all_ok());
        assert_eq!(report.shares[2].flags, vec![true, false, true, true]);
    }

    #[test]
    fn empty_flush_is_free() {
        let (keyring, _) = pki(4, 24);
        let params = PvssParams { n: 4, degree: keyring.f() };
        let mut queue = VerifyQueue::new();
        let report = queue.flush(&params, &keyring.pvss_eks(), &keyring.sig_keys(), b"e");
        assert!(report.all_ok());
        assert_eq!(report.entries, 0);
        assert_eq!(queue.stats().flushes, 0);
    }
}
