//! Cross-crate property and adversarial tests of the substrates, focused on
//! the security properties the paper's proofs rely on (Definitions 1–4).
//! Simulation-backed checks run through the shared adversarial harness
//! (`setupfree-testkit`); algebraic properties run as property tests.

use std::collections::BTreeSet;
use std::sync::Arc;

use proptest::prelude::*;
use setupfree::crypto::poly::{shamir_reconstruct, shamir_share};
use setupfree::crypto::pvss::{PvssParams, PvssScript};
use setupfree::crypto::scalar::Scalar;
use setupfree::crypto::SigningKey;
use setupfree::prelude::*;
use setupfree_avss::harness::AvssSharing;
use setupfree_avss::{Avss, AvssShareOutput};
use setupfree_testkit::{sweep, Adversary, Ensemble};
use setupfree_wcs::WcsHarness;

fn keys(n: usize, seed: u64) -> (Arc<Keyring>, Vec<Arc<PartySecrets>>) {
    let (keyring, secrets) = generate_pki(n, seed);
    (Arc::new(keyring), secrets.into_iter().map(Arc::new).collect())
}

// ---------------------------------------------------------------------------
// AVSS: commitment under adversarial scheduling (Definition 1).
// ---------------------------------------------------------------------------

#[test]
fn avss_commitment_holds_under_many_schedules() {
    let n = 4;
    let (keyring, secrets) = keys(n, 51);
    // Eight random schedules plus the structured adversaries; the dealer
    // (party 2) is also targeted for worst-case delay.
    let mut adversaries = Adversary::standard_sweep(n, 8);
    adversaries.push(Adversary::TargetedDelay { targets: vec![2], seed: 77 });
    let runs = sweep(&adversaries, 5_000_000, |_| {
        let sid = Sid::new("prop-avss");
        Ensemble::build(n, |i| {
            let input = if i.index() == 2 { Some(vec![9u8; 40]) } else { None };
            Box::new(AvssSharing::new(Avss::new(
                sid.clone(),
                i,
                PartyId(2),
                keyring.clone(),
                secrets[i.index()].clone(),
                input,
            ))) as BoxedParty<AvssMessage, AvssShareOutput>
        })
    });
    for run in &runs {
        run.assert_termination();
        // Commitment: every party ends with the same committed ciphertext
        // (the shares themselves are per-party evaluation points).
        let outs = run.honest_outputs();
        assert!(
            outs.windows(2).all(|w| w[0].cipher == w[1].cipher),
            "commitment violated under {}",
            run.adversary
        );
    }
}

// ---------------------------------------------------------------------------
// Secrecy-style checks: f shares reveal nothing reconstructable.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn shamir_f_shares_do_not_reconstruct(secret in any::<u64>(), seed in any::<u64>()) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        use rand::SeedableRng;
        let secret = Scalar::from_u64(secret);
        let f = 2usize;
        let (_, shares) = shamir_share(secret, f, 7, &mut rng);
        // Any f shares interpolate to the wrong value with overwhelming
        // probability (information-theoretic hiding).
        let wrong = shamir_reconstruct(&shares[..f]);
        prop_assume!(secret != Scalar::zero());
        prop_assert_ne!(wrong, secret);
        // f + 1 shares always work.
        prop_assert_eq!(shamir_reconstruct(&shares[..f + 1]), secret);
    }

    #[test]
    fn shamir_roundtrips_under_random_thresholds(secret in any::<u64>(), f in 1usize..6, extra in 0usize..4, seed in any::<u64>()) {
        // The satellite property: share/reconstruct is the identity for any
        // threshold f and any quorum of f + 1 (or more) shares out of
        // n = 3f + 1.
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        use rand::SeedableRng;
        let secret = Scalar::from_u64(secret);
        let n = 3 * f + 1;
        let (poly, shares) = shamir_share(secret, f, n, &mut rng);
        prop_assert_eq!(shares.len(), n);
        prop_assert_eq!(poly.eval_at_index(0), secret);
        let take = (f + 1 + extra).min(n);
        prop_assert_eq!(shamir_reconstruct(&shares[..take]), secret);
        // A disjoint quorum reconstructs the same secret.
        prop_assert_eq!(shamir_reconstruct(&shares[n - (f + 1)..]), secret);
    }

    #[test]
    fn pvss_weights_track_aggregation(a_secret in any::<u64>(), b_secret in any::<u64>(), seed in any::<u64>()) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        use rand::SeedableRng;
        let n = 5;
        let params = PvssParams::new(n, 2);
        let mut eks = Vec::new();
        let mut sig_keys = Vec::new();
        for _ in 0..n {
            let (_, ek) = setupfree::crypto::pvss::PvssDecryptionKey::generate(&mut rng);
            eks.push(ek);
            sig_keys.push(SigningKey::generate(&mut rng));
        }
        let a = PvssScript::deal(&params, &eks, &sig_keys[0], 0, Scalar::from_u64(a_secret), &mut rng);
        let b = PvssScript::deal(&params, &eks, &sig_keys[3], 3, Scalar::from_u64(b_secret), &mut rng);
        let agg = a.aggregate(&b).unwrap();
        prop_assert_eq!(agg.weights()[0], 1);
        prop_assert_eq!(agg.weights()[3], 1);
        prop_assert_eq!(agg.contributor_count(), 2);
        // Aggregating a script with itself doubles the weight but keeps it
        // verifiable.
        let doubled = a.aggregate(&a).unwrap();
        prop_assert_eq!(doubled.weights()[0], 2);
    }
}

// ---------------------------------------------------------------------------
// WCS: the (f+1)-supporting core-set property (Definition 2), measured.
// ---------------------------------------------------------------------------

#[test]
fn wcs_outputs_contain_a_common_core() {
    let n = 7;
    let f = 2;
    let (keyring, secrets) = keys(n, 52);
    let runs = sweep(&Adversary::standard_sweep(n, 6), 5_000_000, |_| {
        let sid = Sid::new("prop-wcs");
        let input: BTreeSet<usize> = (0..n).collect();
        Ensemble::build(n, |i| {
            Box::new(WcsHarness::new(
                Wcs::new(sid.clone(), i, keyring.clone(), secrets[i.index()].clone()),
                input.clone(),
            )) as BoxedParty<WcsMessage, Vec<usize>>
        })
    });
    for run in &runs {
        run.assert_termination();
        let outs = run.honest_outputs();
        // There must exist an (n - f)-sized set contained in at least f + 1
        // outputs.  With full inputs every output is the full set, so check
        // the stronger statement that the intersection of *all* outputs has
        // at least n - f elements.
        let mut intersection: BTreeSet<usize> = (0..n).collect();
        for out in &outs {
            let s: BTreeSet<usize> = out.iter().copied().collect();
            intersection = intersection.intersection(&s).copied().collect();
        }
        assert!(
            intersection.len() >= n - f,
            "core too small under {}: {intersection:?}",
            run.adversary
        );
    }
}

// ---------------------------------------------------------------------------
// Seeding: unpredictability across sessions and leaders (Definition 4).
// ---------------------------------------------------------------------------

#[test]
fn seeding_seeds_differ_across_sessions_and_leaders() {
    let n = 4;
    let (keyring, secrets) = keys(n, 53);
    let run = |sid: &str, leader: usize| {
        let runs = sweep(&[Adversary::Fifo], 5_000_000, |_| {
            let sid = Sid::new(sid);
            Ensemble::build(n, |i| {
                Box::new(Seeding::new(
                    sid.clone(),
                    i,
                    PartyId(leader),
                    keyring.clone(),
                    secrets[i.index()].clone(),
                )) as BoxedParty<SeedingMessage, [u8; 32]>
            })
        });
        runs[0].assert_termination();
        runs[0].assert_agreement();
        runs[0].first_output()
    };
    let a = run("sess-1", 0);
    let b = run("sess-2", 0);
    let c = run("sess-1", 1);
    assert_ne!(a, b, "different sessions must give different seeds");
    assert_ne!(a, c, "different leaders must give different seeds");
}

// ---------------------------------------------------------------------------
// Coin: output bits vary across sessions (unpredictability smoke test) and
// duplicate message delivery does not break anything.
// ---------------------------------------------------------------------------

#[test]
fn coin_bits_vary_and_duplicated_traffic_is_harmless() {
    let n = 4;
    let (keyring, secrets) = keys(n, 54);
    let mut bits = Vec::new();
    for t in 0..5u64 {
        let runs = sweep(&[Adversary::Fifo], 1 << 28, |_| {
            let sid = Sid::new(&format!("prop-coin-{t}"));
            Ensemble::build(n, |i| {
                let coin = Coin::new(sid.clone(), i, keyring.clone(), secrets[i.index()].clone());
                if i.index() == 3 {
                    // One party duplicates every message it sends; handlers
                    // must be idempotent ("first time" rules in the paper).
                    Box::new(setupfree::net::DuplicatingParty::new(coin))
                        as BoxedParty<Envelope, CoinOutput>
                } else {
                    Box::new(coin) as BoxedParty<Envelope, CoinOutput>
                }
            })
        });
        runs[0].assert_termination();
        bits.push(runs[0].first_output().bit);
    }
    assert!(
        bits.iter().any(|b| *b) && bits.iter().any(|b| !*b),
        "bits {bits:?} constant across sessions"
    );
}
