//! Cross-crate property and adversarial tests of the substrates, focused on
//! the security properties the paper's proofs rely on (Definitions 1–4).

use std::collections::BTreeSet;
use std::sync::Arc;

use proptest::prelude::*;
use setupfree::crypto::poly::{shamir_reconstruct, shamir_share};
use setupfree::crypto::pvss::{PvssParams, PvssScript};
use setupfree::crypto::scalar::Scalar;
use setupfree::prelude::*;
use setupfree_avss::harness::AvssSharing;
use setupfree_avss::{Avss, AvssShareOutput};
use setupfree_wcs::WcsHarness;

fn keys(n: usize, seed: u64) -> (Arc<Keyring>, Vec<Arc<PartySecrets>>) {
    let (keyring, secrets) = generate_pki(n, seed);
    (Arc::new(keyring), secrets.into_iter().map(Arc::new).collect())
}

// ---------------------------------------------------------------------------
// AVSS: commitment under adversarial scheduling (Definition 1).
// ---------------------------------------------------------------------------

#[test]
fn avss_commitment_holds_under_many_schedules() {
    let n = 4;
    let (keyring, secrets) = keys(n, 51);
    for seed in 0..8u64 {
        let parties: Vec<BoxedParty<AvssMessage, AvssShareOutput>> = (0..n)
            .map(|i| {
                let input = if i == 2 { Some(vec![9u8; 40]) } else { None };
                Box::new(AvssSharing::new(Avss::new(
                    Sid::new("prop-avss"),
                    PartyId(i),
                    PartyId(2),
                    keyring.clone(),
                    secrets[i].clone(),
                    input,
                ))) as BoxedParty<AvssMessage, AvssShareOutput>
            })
            .collect();
        let mut sim = Simulation::new(parties, Box::new(RandomScheduler::new(seed)));
        sim.run(5_000_000);
        let outs: Vec<AvssShareOutput> = sim.outputs().into_iter().flatten().collect();
        assert_eq!(outs.len(), n, "totality, seed {seed}");
        assert!(outs.windows(2).all(|w| w[0].cipher == w[1].cipher), "commitment, seed {seed}");
    }
}

// ---------------------------------------------------------------------------
// Secrecy-style checks: f shares reveal nothing reconstructable.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn shamir_f_shares_do_not_reconstruct(secret in any::<u64>(), seed in any::<u64>()) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        use rand::SeedableRng;
        let secret = Scalar::from_u64(secret);
        let f = 2usize;
        let (_, shares) = shamir_share(secret, f, 7, &mut rng);
        // Any f shares interpolate to the wrong value with overwhelming
        // probability (information-theoretic hiding).
        let wrong = shamir_reconstruct(&shares[..f]);
        prop_assume!(secret != Scalar::zero());
        prop_assert_ne!(wrong, secret);
        // f + 1 shares always work.
        prop_assert_eq!(shamir_reconstruct(&shares[..f + 1]), secret);
    }

    #[test]
    fn pvss_weights_track_aggregation(a_secret in any::<u64>(), b_secret in any::<u64>(), seed in any::<u64>()) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        use rand::SeedableRng;
        let n = 5;
        let params = PvssParams::new(n, 2);
        let mut eks = Vec::new();
        let mut sig_keys = Vec::new();
        for _ in 0..n {
            let (_, ek) = setupfree::crypto::pvss::PvssDecryptionKey::generate(&mut rng);
            eks.push(ek);
            sig_keys.push(SigningKey::generate(&mut rng));
        }
        let a = PvssScript::deal(&params, &eks, &sig_keys[0], 0, Scalar::from_u64(a_secret), &mut rng);
        let b = PvssScript::deal(&params, &eks, &sig_keys[3], 3, Scalar::from_u64(b_secret), &mut rng);
        let agg = a.aggregate(&b).unwrap();
        prop_assert_eq!(agg.weights()[0], 1);
        prop_assert_eq!(agg.weights()[3], 1);
        prop_assert_eq!(agg.contributor_count(), 2);
        // Aggregating a script with itself doubles the weight but keeps it
        // verifiable.
        let doubled = a.aggregate(&a).unwrap();
        prop_assert_eq!(doubled.weights()[0], 2);
    }
}

use setupfree::crypto::SigningKey;

// ---------------------------------------------------------------------------
// WCS: the (f+1)-supporting core-set property (Definition 2), measured.
// ---------------------------------------------------------------------------

#[test]
fn wcs_outputs_contain_a_common_core() {
    let n = 7;
    let f = 2;
    let (keyring, secrets) = keys(n, 52);
    for seed in 0..6u64 {
        let input: BTreeSet<usize> = (0..n).collect();
        let parties: Vec<BoxedParty<WcsMessage, Vec<usize>>> = (0..n)
            .map(|i| {
                Box::new(WcsHarness::new(
                    Wcs::new(Sid::new("prop-wcs"), PartyId(i), keyring.clone(), secrets[i].clone()),
                    input.clone(),
                )) as BoxedParty<WcsMessage, Vec<usize>>
            })
            .collect();
        let mut sim = Simulation::new(parties, Box::new(RandomScheduler::new(seed)));
        sim.run(5_000_000);
        let outs: Vec<Vec<usize>> = sim.outputs().into_iter().flatten().collect();
        assert_eq!(outs.len(), n);
        // There must exist an (n - f)-sized set contained in at least f + 1
        // outputs.  With full inputs every output is the full set, so check
        // the stronger statement that the intersection of *all* outputs has
        // at least n - f elements.
        let mut intersection: BTreeSet<usize> = (0..n).collect();
        for out in &outs {
            let s: BTreeSet<usize> = out.iter().copied().collect();
            intersection = intersection.intersection(&s).copied().collect();
        }
        assert!(intersection.len() >= n - f, "core too small: {intersection:?} (seed {seed})");
    }
}

// ---------------------------------------------------------------------------
// Seeding: unpredictability across sessions and leaders (Definition 4).
// ---------------------------------------------------------------------------

#[test]
fn seeding_seeds_differ_across_sessions_and_leaders() {
    let n = 4;
    let (keyring, secrets) = keys(n, 53);
    let run = |sid: &str, leader: usize| {
        let parties: Vec<BoxedParty<SeedingMessage, [u8; 32]>> = (0..n)
            .map(|i| {
                Box::new(Seeding::new(
                    Sid::new(sid),
                    PartyId(i),
                    PartyId(leader),
                    keyring.clone(),
                    secrets[i].clone(),
                )) as BoxedParty<SeedingMessage, [u8; 32]>
            })
            .collect();
        let mut sim = Simulation::new(parties, Box::new(FifoScheduler));
        sim.run(5_000_000);
        sim.outputs()[0].unwrap()
    };
    let a = run("sess-1", 0);
    let b = run("sess-2", 0);
    let c = run("sess-1", 1);
    assert_ne!(a, b, "different sessions must give different seeds");
    assert_ne!(a, c, "different leaders must give different seeds");
}

// ---------------------------------------------------------------------------
// Coin: output bits vary across sessions (unpredictability smoke test) and
// duplicate message delivery does not break anything.
// ---------------------------------------------------------------------------

#[test]
fn coin_bits_vary_and_duplicated_traffic_is_harmless() {
    let n = 4;
    let (keyring, secrets) = keys(n, 54);
    let mut bits = Vec::new();
    for t in 0..5u64 {
        let parties: Vec<BoxedParty<CoinMessage, CoinOutput>> = (0..n)
            .map(|i| {
                let coin = Coin::new(
                    Sid::new(&format!("prop-coin-{t}")),
                    PartyId(i),
                    keyring.clone(),
                    secrets[i].clone(),
                );
                if i == 3 {
                    // One party duplicates every message it sends; handlers
                    // must be idempotent ("first time" rules in the paper).
                    Box::new(setupfree::net::DuplicatingParty::new(coin))
                        as BoxedParty<CoinMessage, CoinOutput>
                } else {
                    Box::new(coin) as BoxedParty<CoinMessage, CoinOutput>
                }
            })
            .collect();
        let mut sim = Simulation::new(parties, Box::new(FifoScheduler));
        let report = sim.run(1 << 28);
        assert_eq!(report.reason, StopReason::AllOutputs, "trial {t}");
        bits.push(sim.outputs()[0].clone().unwrap().bit);
    }
    assert!(bits.iter().any(|b| *b) && bits.iter().any(|b| !*b), "bits {bits:?} constant across sessions");
}
