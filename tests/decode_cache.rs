//! Decode-once cache coverage across the real protocol message types.
//!
//! The simulator decodes each distinct payload once and hands `M::clone`s to
//! the remaining recipients of the same send (see `setupfree_net::sim`).  In
//! debug builds — which is how `cargo test` compiles this file — the
//! simulator additionally re-encodes **every cached clone it hands out** and
//! asserts the bytes equal the original wire payload ("clone transparency").
//! Running a protocol here therefore property-checks, for every message its
//! ensemble exchanges (PVSS transcripts, group elements, signatures, votes,
//! …), that a cached decode is indistinguishable from a fresh
//! `from_bytes` decode.
//!
//! Each protocol family with a distinct message type gets a run below, under
//! both a fan-out-friendly schedule (FIFO: all n copies of a multicast
//! delivered while cached) and a reordering one.

use std::sync::Arc;

use setupfree::prelude::*;

fn keys(n: usize, seed: u64) -> (Arc<Keyring>, Vec<Arc<PartySecrets>>) {
    let (keyring, secrets) = generate_pki(n, seed);
    (Arc::new(keyring), secrets.into_iter().map(Arc::new).collect())
}

fn schedules() -> Vec<Box<dyn setupfree::net::Scheduler>> {
    vec![Box::new(FifoScheduler::default()), Box::new(RandomScheduler::new(0xcac4e))]
}

#[test]
fn coin_messages_survive_cached_decode() {
    let n = 4;
    let (keyring, secrets) = keys(n, 31);
    for scheduler in schedules() {
        let parties: Vec<BoxedParty<Envelope, CoinOutput>> = (0..n)
            .map(|i| {
                Box::new(Coin::new(Sid::new("cache-coin"), PartyId(i), keyring.clone(), secrets[i].clone()))
                    as BoxedParty<Envelope, CoinOutput>
            })
            .collect();
        let mut sim = Simulation::new(parties, scheduler);
        let report = sim.run(1 << 28);
        assert_eq!(report.reason, StopReason::AllOutputs);
    }
}

#[test]
fn avss_messages_survive_cached_decode() {
    let n = 4;
    let (keyring, secrets) = keys(n, 32);
    for scheduler in schedules() {
        let parties: Vec<BoxedParty<AvssMessage, Vec<u8>>> = (0..n)
            .map(|i| {
                let input = (i == 0).then(|| vec![5u8; 48]);
                Box::new(setupfree::avss::harness::AvssEndToEnd::new(Avss::new(
                    Sid::new("cache-avss"),
                    PartyId(i),
                    PartyId(0),
                    keyring.clone(),
                    secrets[i].clone(),
                    input,
                ))) as BoxedParty<AvssMessage, Vec<u8>>
            })
            .collect();
        let mut sim = Simulation::new(parties, scheduler);
        let report = sim.run(1 << 26);
        assert_eq!(report.reason, StopReason::AllOutputs);
    }
}

#[test]
fn seeding_messages_survive_cached_decode() {
    let n = 4;
    let (keyring, secrets) = keys(n, 33);
    for scheduler in schedules() {
        let parties: Vec<BoxedParty<SeedingMessage, setupfree_seeding::Seed>> = (0..n)
            .map(|i| {
                Box::new(Seeding::new(
                    Sid::new("cache-seeding"),
                    PartyId(i),
                    PartyId(0),
                    keyring.clone(),
                    secrets[i].clone(),
                )) as BoxedParty<SeedingMessage, setupfree_seeding::Seed>
            })
            .collect();
        let mut sim = Simulation::new(parties, scheduler);
        let report = sim.run(1 << 26);
        assert_eq!(report.reason, StopReason::AllOutputs);
    }
}

#[test]
fn aba_with_real_coin_messages_survive_cached_decode() {
    let n = 4;
    let (keyring, secrets) = keys(n, 34);
    for scheduler in schedules() {
        let parties: Vec<BoxedParty<Envelope, bool>> = (0..n)
            .map(|i| {
                let factory = CoinProtocolFactory::new(PartyId(i), keyring.clone(), secrets[i].clone());
                Box::new(MmrAba::new(Sid::new("cache-aba"), PartyId(i), n, keyring.f(), i % 2 == 0, factory))
                    as BoxedParty<Envelope, bool>
            })
            .collect();
        let mut sim = Simulation::new(parties, scheduler);
        let report = sim.run(1 << 30);
        assert_eq!(report.reason, StopReason::AllOutputs);
    }
}

#[test]
fn rbc_messages_survive_cached_decode() {
    let n = 4;
    for scheduler in schedules() {
        let parties: Vec<BoxedParty<RbcMessage, Vec<u8>>> = (0..n)
            .map(|i| {
                let input = (i == 0).then(|| b"cache-coverage-payload".to_vec());
                Box::new(Rbc::new(Sid::new("cache-rbc"), PartyId(i), n, 1, PartyId(0), input))
                    as BoxedParty<RbcMessage, Vec<u8>>
            })
            .collect();
        let mut sim = Simulation::new(parties, scheduler);
        let report = sim.run(1 << 22);
        assert_eq!(report.reason, StopReason::AllOutputs);
    }
}
