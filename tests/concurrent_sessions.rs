//! Concurrent-session workloads over one simulated network (PR 4).
//!
//! The session router's [`SessionHost`] multiplexes many top-level protocol
//! sessions over a single network by routing on a leading session segment —
//! the workload studied by Cohen et al. for concurrent asynchronous BA
//! (arXiv:2312.14506).  These tests run the two workloads the benchmarks
//! measure — `k` concurrent ABA instances and pipelined beacon epochs —
//! through the shared adversarial harness, asserting per-session agreement
//! and validity under every schedule.

use std::sync::Arc;

use setupfree::prelude::*;
use setupfree_testkit::{assert_agreement_sweep, Adversary, Ensemble};

fn keys(n: usize, seed: u64) -> (Arc<Keyring>, Vec<Arc<PartySecrets>>) {
    let (keyring, secrets) = generate_pki(n, seed);
    (Arc::new(keyring), secrets.into_iter().map(Arc::new).collect())
}

#[test]
fn concurrent_trusted_abas_agree_per_session_across_schedules() {
    let n = 4;
    let k = 4usize;
    // Session s has mixed inputs (i + s) % 2 — per-session validity is then
    // trivially satisfied by any decision; agreement is the interesting part.
    let runs = assert_agreement_sweep(&Adversary::standard_sweep(n, 3), 10_000_000, |adv| {
        Ensemble::build(n, |i| {
            let sessions: Vec<MmrAba<TrustedCoinFactory>> = (0..k)
                .map(|s| {
                    MmrAba::new(
                        Sid::new(&format!("it-kaba-{adv}")).derive("session", s),
                        i,
                        n,
                        1,
                        (i.index() + s) % 2 == 0,
                        TrustedCoinFactory,
                    )
                })
                .collect();
            Box::new(SessionHost::new(sessions)) as BoxedParty<Envelope, Vec<bool>>
        })
        .with_session_of(envelope_session)
    });
    for run in &runs {
        run.assert_validity(|out| out.len() == k);
    }
}

#[test]
fn concurrent_full_stack_abas_agree_per_session() {
    // The real thing: two concurrent ABA sessions whose every round flips
    // the private-setup-free Coin, multiplexed over one network.
    let n = 4;
    let k = 2usize;
    let (keyring, secrets) = keys(n, 91);
    let runs = assert_agreement_sweep(&Adversary::random_sweep(2), 1 << 30, |adv| {
        Ensemble::build(n, |i| {
            let sessions: Vec<MmrAba<CoinProtocolFactory>> = (0..k)
                .map(|s| {
                    let factory = CoinProtocolFactory::new(
                        i,
                        keyring.clone(),
                        secrets[i.index()].clone(),
                    );
                    MmrAba::new(
                        Sid::new(&format!("it-kaba-full-{adv}")).derive("session", s),
                        i,
                        n,
                        keyring.f(),
                        (i.index() + s) % 2 == 0,
                        factory,
                    )
                })
                .collect();
            Box::new(SessionHost::new(sessions)) as BoxedParty<Envelope, Vec<bool>>
        })
        .with_session_of(envelope_session)
    });
    for run in &runs {
        run.assert_validity(|out| out.len() == k);
    }
}

#[test]
fn concurrent_sessions_tolerate_a_silent_party() {
    let n = 4;
    let k = 3usize;
    let runs = assert_agreement_sweep(&Adversary::random_sweep(3), 10_000_000, |adv| {
        Ensemble::build(n, |i| {
            let sessions: Vec<MmrAba<TrustedCoinFactory>> = (0..k)
                .map(|s| {
                    MmrAba::new(
                        Sid::new(&format!("it-kaba-crash-{adv}")).derive("session", s),
                        i,
                        n,
                        1,
                        (i.index() + s) % 2 == 1,
                        TrustedCoinFactory,
                    )
                })
                .collect();
            Box::new(SessionHost::new(sessions)) as BoxedParty<Envelope, Vec<bool>>
        })
        .with_session_of(envelope_session)
        .silence(2)
    });
    for run in &runs {
        assert_eq!(run.honest_outputs().len(), 3, "under {}", run.adversary);
    }
}

#[test]
fn starved_session_still_terminates_and_interference_is_measured() {
    // The per-session fairness regime (Cohen et al., arXiv:2312.14506):
    // the adversary starves ONE session's traffic — every other session's
    // messages deliver first — and the starved session must still
    // terminate by eventual delivery.  The session classifier exposes the
    // per-session delivery split, so the sweep also *measures* the
    // cross-session interference it creates, and asserts the per-session
    // conservation law (checked inside `sweep` for every run).
    let n = 4;
    let k = 4usize;
    let runs = assert_agreement_sweep(&Adversary::session_sweep(k as u16, 2), 10_000_000, |adv| {
        Ensemble::build(n, |i| {
            let sessions: Vec<MmrAba<TrustedCoinFactory>> = (0..k)
                .map(|s| {
                    MmrAba::new(
                        Sid::new(&format!("it-starve-{adv}")).derive("session", s),
                        i,
                        n,
                        1,
                        (i.index() + s) % 2 == 0,
                        TrustedCoinFactory,
                    )
                })
                .collect();
            Box::new(SessionHost::new(sessions)) as BoxedParty<Envelope, Vec<bool>>
        })
        .with_session_of(envelope_session)
    });
    for run in &runs {
        run.assert_validity(|out| out.len() == k);
        // Every session was attributed traffic, and none was silently lost.
        assert_eq!(run.metrics.session_conservation_violation(), None);
        assert!(run.metrics.session_count() >= k, "under {}", run.adversary);
        assert_eq!(run.metrics.unclassified_sent, 0, "all SessionHost traffic has a session");
        let delivered = &run.metrics.session_delivered;
        assert!(
            delivered.iter().take(k).all(|&d| d > 0),
            "every session (starved included) makes progress under {}: {delivered:?}",
            run.adversary
        );
    }
}

#[test]
fn session_partition_starves_the_trailing_group_but_everyone_terminates() {
    let n = 4;
    let k = 4usize;
    let boundary = 2u16;
    let runs = assert_agreement_sweep(
        &[setupfree_testkit::Adversary::SessionPartition { boundary, seed: 0xF00 }],
        10_000_000,
        |adv| {
            Ensemble::build(n, |i| {
                let sessions: Vec<MmrAba<TrustedCoinFactory>> = (0..k)
                    .map(|s| {
                        MmrAba::new(
                            Sid::new(&format!("it-spart-{adv}")).derive("session", s),
                            i,
                            n,
                            1,
                            (i.index() + s) % 2 == 1,
                            TrustedCoinFactory,
                        )
                    })
                    .collect();
                Box::new(SessionHost::new(sessions)) as BoxedParty<Envelope, Vec<bool>>
            })
            .with_session_of(envelope_session)
        },
    );
    for run in &runs {
        run.assert_validity(|out| out.len() == k);
        assert_eq!(run.metrics.session_conservation_violation(), None);
    }
}

#[test]
fn pipelined_beacon_epochs_agree_on_leaders() {
    // Pipelined beacon: all epoch elections run concurrently in a
    // SessionHost (the sequential variant is `RandomBeacon`).  Leaders must
    // agree per epoch; the winning VRF is speculative per-party state, so
    // compare leaders only.
    let n = 4;
    let epochs = 3usize;
    let (keyring, secrets) = keys(n, 92);
    let runs = setupfree_testkit::sweep(&Adversary::random_sweep(2), 1 << 30, |adv| {
        Ensemble::build(n, |i| {
            let sessions: Vec<Election<MmrAbaFactory<TrustedCoinFactory>>> = (0..epochs)
                .map(|e| {
                    let aba = MmrAbaFactory::new(i, n, keyring.f(), TrustedCoinFactory);
                    Election::new(
                        Sid::new(&format!("it-pipe-beacon-{adv}")).derive("epoch", e),
                        i,
                        keyring.clone(),
                        secrets[i.index()].clone(),
                        aba,
                    )
                })
                .collect();
            Box::new(SessionHost::new(sessions)) as BoxedParty<Envelope, Vec<ElectionOutput>>
        })
        .with_session_of(envelope_session)
    });
    for run in &runs {
        run.assert_termination();
        let outs = run.honest_outputs();
        for pair in outs.windows(2) {
            assert_eq!(pair[0].len(), epochs);
            for (a, b) in pair[0].iter().zip(pair[1].iter()) {
                assert_eq!(a.leader, b.leader, "per-epoch leader agreement under {}", run.adversary);
            }
        }
    }
}
