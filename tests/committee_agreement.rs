//! Adversarial battery for committee-subsampled agreement (PR 7 tentpole).
//!
//! Committee sampling changes the fault model: safety now rests on the
//! *sampled* committee having at most `f_c = ⌊(m−1)/3⌋` corrupt members, so
//! the worst case is an adversary that corrupts its global budget **inside**
//! the committee.  These tests make that adversary explicit:
//! [`worst_committee_seed`] scans a seed pool for the committee with the
//! largest overlap with the adversary's candidate set, the overlapping
//! members (up to `f_c`) are silenced, and the run must still terminate
//! with member/listener agreement under every schedule of the committee
//! sweep — including a targeted-delay starvation of a committee member.
//!
//! Scale: n ∈ {40, 100}, far past the all-to-all grids of PRs 1–6.  The
//! committee instances plug the trusted (zero-message) coin and election so
//! the battery isolates the committee logic itself; the full setup-free
//! stack at small n is exercised in `tests/full_stack.rs`.

use std::sync::Arc;

use setupfree_aba::MmrAbaFactory;
use setupfree_core::traits::AbaFactory;
use setupfree_core::{
    worst_committee_seed, Committee, CommitteeConfig, TrustedCoinFactory, TrustedElectionFactory,
};
use setupfree_crypto::{generate_pki, PartySecrets};
use setupfree_net::mux::Envelope;
use setupfree_net::{BoxedParty, Sid};
use setupfree_testkit::{sweep, Adversary, Ensemble};
use setupfree_vba::{accept_all, Vba};

/// The adversary's candidate corruption set: the global fault budget's worth
/// of parties, spread across the index space (not a prefix, so prefix-biased
/// committees would not dodge it by accident).
fn candidate_corruptions(n: usize) -> Vec<usize> {
    let budget = (n - 1) / 3;
    (0..budget).map(|k| (k * 7 + 1) % n).collect()
}

/// Picks the worst committee from a 32-seed pool: the one with the most
/// adversary candidates inside, silenced up to `f_c`.
fn worst_committee(n: usize, size: usize, domain: &str) -> (Committee, Vec<usize>) {
    let pool: Vec<u64> = (0..32).collect();
    let config = CommitteeConfig::new(size, domain);
    let candidates = candidate_corruptions(n);
    let (_seed, committee, corrupt) = worst_committee_seed(&pool, &config, n, &candidates);
    assert!(corrupt.len() <= committee.f());
    (committee, corrupt)
}

fn member_indices(committee: &Committee) -> Vec<usize> {
    committee.members().iter().map(|p| p.index()).collect()
}

fn committee_aba_ensemble(
    n: usize,
    f: usize,
    committee: &Committee,
    corrupt: &[usize],
) -> Ensemble<Envelope, bool> {
    let committee = committee.clone();
    let mut ensemble = Ensemble::build(n, |me| {
        let factory =
            MmrAbaFactory::with_committee(me, n, f, TrustedCoinFactory, committee.clone());
        // Mixed inputs across members so the decision is not forced.
        Box::new(factory.create(Sid::new("committee-aba"), me.index() % 2 == 0))
            as BoxedParty<Envelope, bool>
    });
    for &c in corrupt {
        ensemble = ensemble.silence(c);
    }
    ensemble
}

fn committee_vba_ensemble(
    n: usize,
    committee: &Committee,
    corrupt: &[usize],
    pki_seed: u64,
) -> Ensemble<Envelope, Vec<u8>> {
    let (keyring, secrets) = generate_pki(n, pki_seed);
    let keyring = Arc::new(keyring);
    let secrets: Vec<Arc<PartySecrets>> = secrets.into_iter().map(Arc::new).collect();
    let committee = committee.clone();
    let f = keyring.f();
    let mut ensemble = Ensemble::build(n, |me| {
        let aba = MmrAbaFactory::with_committee(me, n, f, TrustedCoinFactory, committee.clone());
        Box::new(Vba::with_committee(
            Sid::new("committee-vba"),
            me,
            keyring.clone(),
            secrets[me.index()].clone(),
            format!("proposal-{}", me.index()).into_bytes(),
            accept_all(),
            TrustedElectionFactory::new(n),
            aba,
            committee.clone(),
        )) as BoxedParty<Envelope, Vec<u8>>
    });
    for &c in corrupt {
        ensemble = ensemble.silence(c);
    }
    ensemble
}

/// Committee ABA at n = 40 with the worst sampled committee: up to `f_c`
/// Byzantine members *inside* the committee, every schedule of the committee
/// sweep (FIFO, random, member starvation, listener starvation, partition).
#[test]
fn committee_aba_n40_worst_committee_full_sweep() {
    let (n, size) = (40, 10);
    let (committee, corrupt) = worst_committee(n, size, "aba-battery");
    assert!(!corrupt.is_empty(), "the pool must yield at least one inside corruption");
    let members = member_indices(&committee);
    let adversaries = Adversary::committee_sweep(n, &members, 3);
    let runs = sweep(&adversaries, 400_000_000, |_| {
        committee_aba_ensemble(n, (n - 1) / 3, &committee, &corrupt)
    });
    for run in &runs {
        run.assert_committee_agreement(&members);
        // Validity: some member held each input bit, so any common bit is
        // valid; pin instead that listeners adopted the members' bit.
        let member_bit = members
            .iter()
            .find(|&&m| !corrupt.contains(&m))
            .and_then(|&m| run.outputs[m])
            .expect("an honest member decided");
        run.assert_validity(|&b| b == member_bit);
    }
}

/// Committee ABA at n = 100 (committee of 16, f_c = 5): liveness and
/// agreement survive the worst committee under random + member-starvation
/// schedules.
#[test]
fn committee_aba_n100_worst_committee() {
    let (n, size) = (100, 16);
    let (committee, corrupt) = worst_committee(n, size, "aba-battery-100");
    let members = member_indices(&committee);
    let mut adversaries = Adversary::random_sweep(2);
    adversaries.push(Adversary::TargetedDelay { targets: vec![members[0]], seed: 0xbad });
    let runs = sweep(&adversaries, 1_000_000_000, |_| {
        committee_aba_ensemble(n, (n - 1) / 3, &committee, &corrupt)
    });
    for run in &runs {
        run.assert_committee_agreement(&members);
    }
}

/// Committee VBA at n = 40: worst committee, up to `f_c` silent members
/// inside it, full committee sweep.  The decided value must be an honest
/// *member's* proposal (listeners never propose; silent members never
/// finish their consistent broadcast).
#[test]
fn committee_vba_n40_worst_committee_full_sweep() {
    let (n, size) = (40, 10);
    let (committee, corrupt) = worst_committee(n, size, "vba-battery");
    let members = member_indices(&committee);
    let adversaries = Adversary::committee_sweep(n, &members, 2);
    let runs = sweep(&adversaries, 600_000_000, |_| {
        committee_vba_ensemble(n, &committee, &corrupt, 0x7b)
    });
    for run in &runs {
        run.assert_committee_agreement(&members);
        run.assert_validity(|v| {
            members.iter().any(|&m| v == &format!("proposal-{m}").into_bytes())
        });
    }
}

/// Committee VBA at n = 100 (committee of 16): agreement and termination
/// under random scheduling plus starvation of a committee member.
#[test]
fn committee_vba_n100_worst_committee() {
    let (n, size) = (100, 16);
    let (committee, corrupt) = worst_committee(n, size, "vba-battery-100");
    let members = member_indices(&committee);
    let mut adversaries = Adversary::random_sweep(1);
    adversaries.push(Adversary::TargetedDelay { targets: vec![members[0]], seed: 0xbee });
    let runs = sweep(&adversaries, 2_000_000_000, |_| {
        committee_vba_ensemble(n, &committee, &corrupt, 0x7c)
    });
    for run in &runs {
        run.assert_committee_agreement(&members);
    }
}
