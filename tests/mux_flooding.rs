//! Regression test for the bounded pre-activation buffer (PR 4 satellite).
//!
//! Before the session router, the hand-rolled "buffer until the child
//! exists" queues (`aba_buffer`, `election_buffer`, the ABA's per-round
//! `coin_buffer`, the Coin's `avss_buffers`) grew without bound: a Byzantine
//! sender could flood traffic for a child instance the victim would never
//! (or only much later) create, and every message was retained.  The
//! router's [`PreActivationBuffer`] enforces a per-sender cap and drops
//! byte-identical duplicates.
//!
//! Two layers of coverage:
//!
//! * a **unit-level bound check**: feed one ABA instance far more than `cap`
//!   distinct (and duplicate) coin envelopes for a round whose coin will
//!   never be created, and assert the buffered count stays at the cap;
//! * an **ensemble-level fault plan** through the testkit: a flooding
//!   Byzantine party sprays pre-activation traffic for a far-future round at
//!   every honest party mid-protocol, and the honest parties still reach
//!   agreement under a sweep of adversarial schedules.

use setupfree::prelude::*;
use setupfree_net::mux::DEFAULT_PER_SENDER_CAP;
use setupfree_net::Step;
use setupfree_testkit::{sweep, Adversary, Ensemble};

type TrustedAba = MmrAba<TrustedCoinFactory>;

/// An envelope addressed to the (never created) coin of `round`, carrying
/// `nonce` as a distinct payload.
fn coin_flood_envelope(round: usize, nonce: u64) -> Envelope {
    Envelope::seal(InstancePath::of(PathSeg::new(setupfree_aba::K_COIN, round)), &nonce)
}

#[test]
fn per_sender_cap_bounds_the_pre_activation_buffer() {
    let n = 4;
    let mut aba = TrustedAba::new(Sid::new("flood"), PartyId(0), n, 1, true, TrustedCoinFactory);
    let _ = MuxNode::on_activation(&mut aba);

    // One Byzantine sender floods 20 × cap *distinct* messages for round 63
    // (whose coin is never created this early).
    for nonce in 0..(20 * DEFAULT_PER_SENDER_CAP as u64) {
        let env = coin_flood_envelope(63, nonce);
        let step = aba.on_envelope(PartyId(3), env.path, &env.payload);
        assert!(step.is_empty(), "flood traffic must not trigger sends");
    }
    assert_eq!(
        aba.buffered_coin_messages(),
        DEFAULT_PER_SENDER_CAP,
        "per-sender cap must bound the buffer"
    );

    // Duplicates from a second sender are stored once.
    let dup = coin_flood_envelope(62, 7);
    for _ in 0..100 {
        let _ = aba.on_envelope(PartyId(2), dup.path, &dup.payload);
    }
    assert_eq!(
        aba.buffered_coin_messages(),
        DEFAULT_PER_SENDER_CAP + 1,
        "byte-identical duplicates must be dropped"
    );

    // Distinct senders get independent caps (total stays O(n · cap), never
    // unbounded).
    for nonce in 0..(2 * DEFAULT_PER_SENDER_CAP as u64) {
        let env = coin_flood_envelope(63, nonce);
        let _ = aba.on_envelope(PartyId(1), env.path, &env.payload);
    }
    assert_eq!(aba.buffered_coin_messages(), 2 * DEFAULT_PER_SENDER_CAP + 1);
}

/// A Byzantine machine that behaves like a silent party except that every
/// delivery triggers a burst of distinct pre-activation coin traffic for a
/// far-future ABA round, until a total flood volume well past the
/// per-sender cap has been sprayed at every honest party.
#[derive(Debug)]
struct FloodingParty {
    nonce: u64,
    burst: u64,
    total: u64,
}

impl ProtocolInstance for FloodingParty {
    type Message = Envelope;
    type Output = bool;

    fn on_activation(&mut self) -> Step<Envelope> {
        self.on_message(PartyId(0), Envelope::seal(InstancePath::root(), &0u8))
    }

    fn on_message(&mut self, _from: PartyId, _msg: Envelope) -> Step<Envelope> {
        let mut step = Step::none();
        for _ in 0..self.burst {
            if self.nonce >= self.total {
                break;
            }
            self.nonce += 1;
            step.push_multicast(coin_flood_envelope(60, self.nonce));
        }
        step
    }

    fn output(&self) -> Option<bool> {
        None
    }
}

#[test]
fn honest_parties_agree_despite_a_flooding_byzantine_sender() {
    let n = 4;
    let inputs = [true, false, true, true];
    let adversaries = {
        let mut a = vec![Adversary::Fifo];
        a.extend((0..3).map(|seed| Adversary::Random { seed }));
        a
    };
    let runs = sweep(&adversaries, 5_000_000, |_| {
        Ensemble::new(
            (0..n)
                .map(|i| {
                    if i == 3 {
                        // Sprays twice the per-sender cap at every honest
                        // party (the cap demonstrably engages) without
                        // unbounded message amplification.
                        Box::new(FloodingParty {
                            nonce: 0,
                            burst: 64,
                            total: 2 * DEFAULT_PER_SENDER_CAP as u64,
                        }) as BoxedParty<Envelope, bool>
                    } else {
                        Box::new(TrustedAba::new(
                            Sid::new("flood-sweep"),
                            PartyId(i),
                            n,
                            1,
                            inputs[i],
                            TrustedCoinFactory,
                        )) as BoxedParty<Envelope, bool>
                    }
                })
                .collect(),
        )
        .mark_byzantine(3)
    });
    for run in &runs {
        run.assert_termination();
        run.assert_agreement();
        let decided = run.honest_outputs();
        assert_eq!(decided.len(), 3, "under {}", run.adversary);
        assert!(inputs.contains(&decided[0]), "validity under {}", run.adversary);
        // Buffer-pressure telemetry (polled from the parties' routers into
        // `Metrics` at the end of the run): the flood pressure is visible —
        // at least one victim's buffer reached cap scale (buffered or
        // dropped) — while occupancy stays bounded at cap × victims plus
        // the honest pre-activation traffic still parked at termination.
        let cap = DEFAULT_PER_SENDER_CAP as u64;
        let pressure = run.metrics.pre_activation_buffered + run.metrics.pre_activation_dropped;
        assert!(
            pressure >= cap,
            "under {}: flood pressure must register in the telemetry (buffered {} + dropped {})",
            run.adversary,
            run.metrics.pre_activation_buffered,
            run.metrics.pre_activation_dropped
        );
        assert!(
            run.metrics.pre_activation_buffered <= 3 * (cap + 64),
            "under {}: occupancy stays bounded by cap × victims (buffered {})",
            run.adversary,
            run.metrics.pre_activation_buffered
        );
    }
}
