//! Regression test for the bounded pre-activation buffer (PR 4 satellite).
//!
//! Before the session router, the hand-rolled "buffer until the child
//! exists" queues (`aba_buffer`, `election_buffer`, the ABA's per-round
//! `coin_buffer`, the Coin's `avss_buffers`) grew without bound: a Byzantine
//! sender could flood traffic for a child instance the victim would never
//! (or only much later) create, and every message was retained.  The
//! router's [`PreActivationBuffer`] enforces a per-sender cap and drops
//! byte-identical duplicates.
//!
//! Two layers of coverage:
//!
//! * a **unit-level bound check**: feed one ABA instance far more than `cap`
//!   distinct (and duplicate) coin envelopes for a round whose coin will
//!   never be created, and assert the buffered count stays at the cap;
//! * an **ensemble-level fault plan** through the testkit: a flooding
//!   Byzantine party sprays pre-activation traffic for a far-future round at
//!   every honest party mid-protocol, and the honest parties still reach
//!   agreement under a sweep of adversarial schedules.

use setupfree::prelude::*;
use setupfree_net::mux::{composite_cap, CapPolicy, DEFAULT_PER_SENDER_CAP};
use setupfree_net::Step;
use setupfree_testkit::{sweep, Adversary, Ensemble};

type TrustedAba = MmrAba<TrustedCoinFactory>;

/// An envelope addressed to the (never created) coin of `round`, carrying
/// `nonce` as a distinct payload.
fn coin_flood_envelope(round: usize, nonce: u64) -> Envelope {
    Envelope::seal(InstancePath::of(PathSeg::new(setupfree_aba::K_COIN, round)), &nonce)
}

#[test]
fn per_sender_cap_bounds_the_pre_activation_buffer() {
    let n = 4;
    let mut aba = TrustedAba::new(Sid::new("flood"), PartyId(0), n, 1, true, TrustedCoinFactory);
    let _ = MuxNode::on_activation(&mut aba);

    // One Byzantine sender floods 20 × cap *distinct* messages for round 63
    // (whose coin is never created this early).
    for nonce in 0..(20 * DEFAULT_PER_SENDER_CAP as u64) {
        let env = coin_flood_envelope(63, nonce);
        let step = aba.on_envelope(PartyId(3), env.path, &env.payload);
        assert!(step.is_empty(), "flood traffic must not trigger sends");
    }
    assert_eq!(
        aba.buffered_coin_messages(),
        DEFAULT_PER_SENDER_CAP,
        "per-sender cap must bound the buffer"
    );

    // Duplicates from a second sender are stored once.
    let dup = coin_flood_envelope(62, 7);
    for _ in 0..100 {
        let _ = aba.on_envelope(PartyId(2), dup.path, &dup.payload);
    }
    assert_eq!(
        aba.buffered_coin_messages(),
        DEFAULT_PER_SENDER_CAP + 1,
        "byte-identical duplicates must be dropped"
    );

    // Distinct senders get independent caps — and at n = 4 the second
    // sender reaching cap scale *is* the adaptive witness quorum
    // (f + 1 = 2): two distinct senders filling up for the same child reads
    // as correlated lag, so the cap raises to the ceiling for that child
    // and the second sender's whole burst is accepted.  Total occupancy
    // stays bounded by O(senders · ceiling), never unbounded.
    for nonce in 0..(2 * DEFAULT_PER_SENDER_CAP as u64) {
        let env = coin_flood_envelope(63, nonce);
        let _ = aba.on_envelope(PartyId(1), env.path, &env.payload);
    }
    assert_eq!(aba.buffered_coin_messages(), 3 * DEFAULT_PER_SENDER_CAP + 1);
}

/// PR 6 regression: a deep composite at high `n` no longer drops honest
/// multi-round lag (the old static `max(1024, 64n)` cap did), while a lone
/// flooder still hits the floor and even witnessed children stay bounded by
/// the ceiling.
#[test]
fn adaptive_cap_spares_honest_lag_while_a_flooder_still_hits_the_cap() {
    let n = 40;
    let f = (n - 1) / 3;
    let CapPolicy::Adaptive { floor, ceiling, witnesses } = composite_cap(n) else {
        panic!("composite routers must use the adaptive cap");
    };
    assert_eq!(floor, 64 * n, "the old static cap is the adaptive floor");
    assert_eq!(witnesses, f + 1, "a raise needs at least one honest witness");

    let mut aba = TrustedAba::new(Sid::new("lag"), PartyId(0), n, f, true, TrustedCoinFactory);
    let _ = MuxNode::on_activation(&mut aba);

    // Honest multi-round lag: this party is the straggler, and all n − 1
    // peers run ahead together, streaming round-42 coin traffic that
    // reaches 1.5× the old static cap *per sender*.  Interleaved, as lag
    // traffic actually arrives.  Under the static cap a third of every
    // sender's envelopes would be dropped — a liveness bug, since nothing
    // here is retransmitted; under the adaptive cap nothing may be lost.
    let senders = n - 1;
    let per_sender = floor + floor / 2;
    for seq in 0..per_sender {
        for s in 1..n {
            let env = coin_flood_envelope(42, (seq * n + s) as u64);
            let _ = aba.on_envelope(PartyId(s), env.path, &env.payload);
        }
    }
    let lag = MuxNode::pre_activation_stats(&aba);
    assert_eq!(lag.dropped, 0, "honest multi-round lag must survive the adaptive cap");
    assert_eq!(lag.buffered, (senders * per_sender) as u64);

    // A lone flooder aimed at a *different* child has no witnesses there:
    // its cap is the floor, exactly as under the old static policy.
    for nonce in 0..(2 * floor) as u64 {
        let env = coin_flood_envelope(43, nonce);
        let _ = aba.on_envelope(PartyId(7), env.path, &env.payload);
    }
    let flooded = MuxNode::pre_activation_stats(&aba);
    assert_eq!(flooded.dropped - lag.dropped, floor as u64, "a lone flooder still hits the cap");
    assert_eq!(flooded.buffered - lag.buffered, floor as u64);

    // Even a flood mounted *during* witnessed lag is bounded: the raised
    // child's cap is the ceiling, not infinity.
    let overshoot = 500;
    let budget = ceiling - per_sender + overshoot;
    for extra in 0..budget {
        let env = coin_flood_envelope(42, (1 << 32) + extra as u64);
        let _ = aba.on_envelope(PartyId(1), env.path, &env.payload);
    }
    let capped = MuxNode::pre_activation_stats(&aba);
    assert_eq!(capped.dropped - flooded.dropped, overshoot as u64, "the ceiling still bounds");
    assert_eq!(capped.buffered - flooded.buffered, (ceiling - per_sender) as u64);
}

/// PR 7 (committee subsampling): committee-hosted children size their cap to
/// the committee, and non-member traffic never reaches the buffer at all.
///
/// The first property is the cap-scaling fix: a committee ABA's coin router
/// used to inherit `composite_cap(n)`, so at n = 40 a single Byzantine
/// *member* could park `64n = 2560` envelopes per victim child even though
/// only `m = 10` parties may legitimately lag.  [`committee_cap`] pins the
/// floor to the committee size.  The second property is the listener
/// filter: coin traffic from outside the committee (or arriving at a
/// listener) is dropped before the pre-activation buffer, so an outsider
/// cannot occupy even one slot.
#[test]
fn committee_cap_scales_to_the_committee_and_non_members_never_buffer() {
    use setupfree_core::{Committee, CommitteeConfig};
    use setupfree_net::mux::committee_cap;

    let (n, m) = (40, 10);
    let f = (n - 1) / 3;
    let CapPolicy::Adaptive { floor, ceiling, witnesses } = committee_cap(m) else {
        panic!("committee routers must use the adaptive cap");
    };
    assert_eq!(floor, DEFAULT_PER_SENDER_CAP.max(64 * m));
    assert_eq!(ceiling, 8 * floor);
    assert_eq!(witnesses, (m - 1) / 3 + 1, "a raise needs an honest committee witness");
    let CapPolicy::Adaptive { floor: full_floor, .. } = composite_cap(n) else {
        panic!("composite routers must use the adaptive cap");
    };
    assert!(floor < full_floor, "the committee floor must scale with m, not n");

    let committee =
        Committee::sample(&CommitteeConfig::new(m, "flood-unit"), &1u64.to_le_bytes(), n);
    let victim = committee.members()[0];
    let insider = committee.members()[1];
    let outsider = PartyId((0..n).find(|&i| !committee.is_member(PartyId(i))).unwrap());

    let mut aba = TrustedAba::with_committee(
        Sid::new("cflood"),
        victim,
        n,
        f,
        true,
        TrustedCoinFactory,
        committee.clone(),
    );
    let _ = MuxNode::on_activation(&mut aba);

    // An outsider sprays twice the *all-to-all* floor at a member: zero
    // slots occupied — the membership filter runs before the buffer.
    for nonce in 0..(2 * full_floor) as u64 {
        let env = coin_flood_envelope(63, nonce);
        let step = aba.on_envelope(outsider, env.path, &env.payload);
        assert!(step.is_empty(), "outsider flood must not trigger sends");
    }
    assert_eq!(aba.buffered_coin_messages(), 0, "non-member flood must never buffer");

    // A Byzantine *member* flooding the same child is pinned at the
    // committee floor — 1024 here, not the 2560 the n-sized cap allowed.
    for nonce in 0..(2 * full_floor) as u64 {
        let env = coin_flood_envelope(63, nonce);
        let _ = aba.on_envelope(insider, env.path, &env.payload);
    }
    assert_eq!(aba.buffered_coin_messages(), floor, "member flooder pinned at committee floor");

    // A listener mounts no children and buffers nothing, even for traffic
    // that *claims* to come from a member.
    let mut listener = TrustedAba::with_committee(
        Sid::new("cflood-listener"),
        outsider,
        n,
        f,
        true,
        TrustedCoinFactory,
        committee,
    );
    let _ = MuxNode::on_activation(&mut listener);
    for nonce in 0..floor as u64 {
        let env = coin_flood_envelope(2, nonce);
        let _ = listener.on_envelope(insider, env.path, &env.payload);
    }
    assert_eq!(listener.buffered_coin_messages(), 0, "listeners never buffer coin traffic");
}

/// Ensemble-level committee flooding regression: a Byzantine **non-member**
/// sprays pre-activation coin traffic at everyone mid-protocol; the
/// committee still agrees and the flood never registers in the buffer
/// telemetry (it is dropped at the membership filter, before the router).
#[test]
fn committee_honest_agree_despite_a_non_member_flooder() {
    use setupfree_core::{Committee, CommitteeConfig};

    let n = 10;
    let committee =
        Committee::sample(&CommitteeConfig::new(6, "flood-sweep"), &3u64.to_le_bytes(), n);
    let flooder = (0..n).find(|&i| !committee.is_member(PartyId(i))).unwrap();
    let adversaries = {
        let mut a = vec![Adversary::Fifo];
        a.extend((0..3).map(|seed| Adversary::Random { seed }));
        a
    };
    let runs = sweep(&adversaries, 5_000_000, |_| {
        let committee = committee.clone();
        Ensemble::build(n, |me| {
            if me.index() == flooder {
                Box::new(FloodingParty {
                    nonce: 0,
                    burst: 64,
                    total: 2 * DEFAULT_PER_SENDER_CAP as u64,
                }) as BoxedParty<Envelope, bool>
            } else {
                Box::new(TrustedAba::with_committee(
                    Sid::new("cflood-sweep"),
                    me,
                    n,
                    (n - 1) / 3,
                    me.index() % 2 == 0,
                    TrustedCoinFactory,
                    committee.clone(),
                )) as BoxedParty<Envelope, bool>
            }
        })
        .mark_byzantine(flooder)
    });
    let members: Vec<usize> = committee.members().iter().map(|p| p.index()).collect();
    for run in &runs {
        run.assert_committee_agreement(&members);
        // Contrast with the all-to-all flooding sweep above, where the same
        // flood drives at least `cap` worth of buffer pressure: filtered at
        // the membership check, it must stay invisible to the router.
        assert!(
            run.metrics.pre_activation_buffered + run.metrics.pre_activation_dropped
                < DEFAULT_PER_SENDER_CAP as u64,
            "under {}: a non-member flood must never reach the buffers (buffered {} + dropped {})",
            run.adversary,
            run.metrics.pre_activation_buffered,
            run.metrics.pre_activation_dropped
        );
    }
}

/// A Byzantine machine that behaves like a silent party except that every
/// delivery triggers a burst of distinct pre-activation coin traffic for a
/// far-future ABA round, until a total flood volume well past the
/// per-sender cap has been sprayed at every honest party.
#[derive(Debug)]
struct FloodingParty {
    nonce: u64,
    burst: u64,
    total: u64,
}

impl ProtocolInstance for FloodingParty {
    type Message = Envelope;
    type Output = bool;

    fn on_activation(&mut self) -> Step<Envelope> {
        self.on_message(PartyId(0), Envelope::seal(InstancePath::root(), &0u8))
    }

    fn on_message(&mut self, _from: PartyId, _msg: Envelope) -> Step<Envelope> {
        let mut step = Step::none();
        for _ in 0..self.burst {
            if self.nonce >= self.total {
                break;
            }
            self.nonce += 1;
            step.push_multicast(coin_flood_envelope(60, self.nonce));
        }
        step
    }

    fn output(&self) -> Option<bool> {
        None
    }
}

#[test]
fn honest_parties_agree_despite_a_flooding_byzantine_sender() {
    let n = 4;
    let inputs = [true, false, true, true];
    let adversaries = {
        let mut a = vec![Adversary::Fifo];
        a.extend((0..3).map(|seed| Adversary::Random { seed }));
        a
    };
    let runs = sweep(&adversaries, 5_000_000, |_| {
        Ensemble::new(
            (0..n)
                .map(|i| {
                    if i == 3 {
                        // Sprays twice the per-sender cap at every honest
                        // party (the cap demonstrably engages) without
                        // unbounded message amplification.
                        Box::new(FloodingParty {
                            nonce: 0,
                            burst: 64,
                            total: 2 * DEFAULT_PER_SENDER_CAP as u64,
                        }) as BoxedParty<Envelope, bool>
                    } else {
                        Box::new(TrustedAba::new(
                            Sid::new("flood-sweep"),
                            PartyId(i),
                            n,
                            1,
                            inputs[i],
                            TrustedCoinFactory,
                        )) as BoxedParty<Envelope, bool>
                    }
                })
                .collect(),
        )
        .mark_byzantine(3)
    });
    for run in &runs {
        run.assert_termination();
        run.assert_agreement();
        let decided = run.honest_outputs();
        assert_eq!(decided.len(), 3, "under {}", run.adversary);
        assert!(inputs.contains(&decided[0]), "validity under {}", run.adversary);
        // Buffer-pressure telemetry (polled from the parties' routers into
        // `Metrics` at the end of the run): the flood pressure is visible —
        // at least one victim's buffer reached cap scale (buffered or
        // dropped) — while occupancy stays bounded at cap × victims plus
        // the honest pre-activation traffic still parked at termination.
        let cap = DEFAULT_PER_SENDER_CAP as u64;
        let pressure = run.metrics.pre_activation_buffered + run.metrics.pre_activation_dropped;
        assert!(
            pressure >= cap,
            "under {}: flood pressure must register in the telemetry (buffered {} + dropped {})",
            run.adversary,
            run.metrics.pre_activation_buffered,
            run.metrics.pre_activation_dropped
        );
        assert!(
            run.metrics.pre_activation_buffered <= 3 * (cap + 64),
            "under {}: occupancy stays bounded by cap × victims (buffered {})",
            run.adversary,
            run.metrics.pre_activation_buffered
        );
    }
}
