//! Wire-compatibility of the session-router envelope across every composite
//! protocol.
//!
//! PR 4 replaced the per-protocol nested message enums with one flat wire
//! format: `Envelope { path, payload }`, encoded once at the leaf.  This
//! suite asserts that **every composite protocol's messages survive
//! `to_bytes`/`from_bytes` through the new envelope**: whatever a protocol
//! instance emits — activation traffic and first-level responses alike —
//! decodes back to an identical envelope, with a valid instance path.
//!
//! (Deeper traffic is covered exhaustively by `tests/decode_cache.rs`: in
//! debug builds the simulator re-encodes every cached decode it hands out
//! and asserts byte equality, so full end-to-end runs of each protocol
//! property-check the envelope for every message exchanged.)

use std::sync::Arc;

use setupfree::prelude::*;
use setupfree_aba::setup_free_aba_factory;
use setupfree_app::adkg::Adkg;
use setupfree_net::mux::MAX_PATH_SEGMENTS;
use setupfree_net::Step;

fn keys(n: usize, seed: u64) -> (Arc<Keyring>, Vec<Arc<PartySecrets>>) {
    let (keyring, secrets) = generate_pki(n, seed);
    (Arc::new(keyring), secrets.into_iter().map(Arc::new).collect())
}

/// Asserts every envelope of `step` roundtrips bit-exactly and carries a
/// well-formed path, returning the envelopes for further feeding.
fn assert_roundtrip(protocol: &str, step: &Step<Envelope>) -> Vec<Envelope> {
    assert!(!step.outgoing.is_empty() || protocol == "beacon-quiet", "{protocol}: empty step");
    step.outgoing
        .iter()
        .map(|o| {
            let bytes = setupfree::wire::to_bytes(&o.msg);
            let decoded: Envelope = setupfree::wire::from_bytes(&bytes).unwrap_or_else(|e| {
                panic!("{protocol}: envelope failed to decode: {e} ({:?})", o.msg)
            });
            assert_eq!(decoded, o.msg, "{protocol}: envelope changed across the wire");
            assert_eq!(
                setupfree::wire::to_bytes(&decoded),
                bytes,
                "{protocol}: re-encoding changed bytes"
            );
            assert!(decoded.path.depth() <= MAX_PATH_SEGMENTS);
            decoded
        })
        .collect()
}

/// Drives a pair of instances: activates both, cross-feeds P0's activation
/// traffic into P1, and roundtrips everything either emits.
fn exercise<P: ProtocolInstance<Message = Envelope>>(protocol: &str, mut a: P, mut b: P) {
    let step_a = a.on_activation();
    let envs = assert_roundtrip(protocol, &step_a);
    let _ = assert_roundtrip(&format!("{protocol} (peer activation)"), &b.on_activation());
    for env in envs {
        let reply = b.on_message(PartyId(0), env);
        let _ = assert_roundtrip(&format!("{protocol} (reply)"), &Step {
            outgoing: reply
                .outgoing
                .into_iter()
                .chain(std::iter::once(setupfree_net::Outgoing {
                    dest: setupfree_net::Dest::All,
                    // Pad with a known-good envelope so the assertion helper
                    // never sees an empty step (quiet replies are fine).
                    msg: Envelope::seal(InstancePath::root(), &0u8),
                }))
                .collect(),
        });
    }
}

#[test]
fn coin_messages_survive_the_envelope() {
    let n = 4;
    let (keyring, secrets) = keys(n, 71);
    let mk = |i: usize| Coin::new(Sid::new("wc-coin"), PartyId(i), keyring.clone(), secrets[i].clone());
    exercise("coin", mk(0), mk(1));
}

#[test]
fn aba_messages_survive_the_envelope() {
    let n = 4;
    let (keyring, secrets) = keys(n, 72);
    // Both the trusted-coin and the real-coin stacks.
    let mk_trusted = |i: usize| {
        MmrAba::new(Sid::new("wc-aba-t"), PartyId(i), n, 1, i.is_multiple_of(2), TrustedCoinFactory)
    };
    exercise("aba (trusted coin)", mk_trusted(0), mk_trusted(1));
    let mk_real = |i: usize| {
        let factory = CoinProtocolFactory::new(PartyId(i), keyring.clone(), secrets[i].clone());
        MmrAba::new(Sid::new("wc-aba-r"), PartyId(i), n, 1, i.is_multiple_of(2), factory)
    };
    exercise("aba (real coin)", mk_real(0), mk_real(1));
}

#[test]
fn election_messages_survive_the_envelope() {
    let n = 4;
    let (keyring, secrets) = keys(n, 73);
    let mk = |i: usize| {
        let aba = setup_free_aba_factory(PartyId(i), keyring.clone(), secrets[i].clone());
        Election::new(Sid::new("wc-elec"), PartyId(i), keyring.clone(), secrets[i].clone(), aba)
    };
    exercise("election", mk(0), mk(1));
}

#[test]
fn vba_messages_survive_the_envelope() {
    let n = 4;
    let (keyring, secrets) = keys(n, 74);

    #[derive(Clone)]
    struct Ef {
        me: PartyId,
        keyring: Arc<Keyring>,
        secrets: Arc<PartySecrets>,
    }
    impl ElectionFactory for Ef {
        type Instance = Election<MmrAbaFactory<TrustedCoinFactory>>;
        fn create(&self, sid: Sid) -> Self::Instance {
            let aba = MmrAbaFactory::new(self.me, self.keyring.n(), self.keyring.f(), TrustedCoinFactory);
            Election::new(sid, self.me, self.keyring.clone(), self.secrets.clone(), aba)
        }
    }

    let mk = |i: usize| {
        let ef = Ef { me: PartyId(i), keyring: keyring.clone(), secrets: secrets[i].clone() };
        let af = MmrAbaFactory::new(PartyId(i), n, keyring.f(), TrustedCoinFactory);
        Vba::new(
            Sid::new("wc-vba"),
            PartyId(i),
            keyring.clone(),
            secrets[i].clone(),
            vec![0x7a, i as u8],
            accept_all(),
            ef,
            af,
        )
    };
    exercise("vba", mk(0), mk(1));
}

#[test]
fn adkg_messages_survive_the_envelope() {
    let n = 4;
    let (keyring, secrets) = keys(n, 75);

    #[derive(Clone)]
    struct Ef {
        me: PartyId,
        keyring: Arc<Keyring>,
        secrets: Arc<PartySecrets>,
    }
    impl ElectionFactory for Ef {
        type Instance = Election<MmrAbaFactory<TrustedCoinFactory>>;
        fn create(&self, sid: Sid) -> Self::Instance {
            let aba = MmrAbaFactory::new(self.me, self.keyring.n(), self.keyring.f(), TrustedCoinFactory);
            Election::new(sid, self.me, self.keyring.clone(), self.secrets.clone(), aba)
        }
    }

    let mk = |i: usize| {
        let ef = Ef { me: PartyId(i), keyring: keyring.clone(), secrets: secrets[i].clone() };
        let af = MmrAbaFactory::new(PartyId(i), n, keyring.f(), TrustedCoinFactory);
        Adkg::new(Sid::new("wc-adkg"), PartyId(i), keyring.clone(), secrets[i].clone(), ef, af)
    };
    exercise("adkg", mk(0), mk(1));
}

#[test]
fn beacon_messages_survive_the_envelope() {
    let n = 4;
    let (keyring, secrets) = keys(n, 76);
    let mk = |i: usize| {
        let aba = MmrAbaFactory::new(PartyId(i), n, keyring.f(), TrustedCoinFactory);
        RandomBeacon::new(Sid::new("wc-beacon"), PartyId(i), keyring.clone(), secrets[i].clone(), aba, 2)
    };
    exercise("beacon", mk(0), mk(1));
    // The child-GC acknowledgement (the beacon's only local message)
    // roundtrips through the envelope too.
    let done = setupfree::app::beacon::BeaconMessage::Done { epoch: 3 };
    let env = Envelope::seal(InstancePath::root(), &done);
    let bytes = setupfree::wire::to_bytes(&env);
    let decoded: Envelope = setupfree::wire::from_bytes(&bytes).unwrap();
    assert_eq!(decoded.open::<setupfree::app::beacon::BeaconMessage>(), Some(done));
}

#[test]
fn session_host_messages_survive_the_envelope() {
    let n = 4;
    let mk = |i: usize| {
        let sessions: Vec<MmrAba<TrustedCoinFactory>> = (0..3)
            .map(|s| {
                MmrAba::new(
                    Sid::new("wc-host").derive("session", s),
                    PartyId(i),
                    n,
                    1,
                    (i + s).is_multiple_of(2),
                    TrustedCoinFactory,
                )
            })
            .collect();
        SessionHost::new(sessions)
    };
    exercise("session-host", mk(0), mk(1));
}

#[test]
fn truncated_and_malformed_envelopes_are_rejected_not_panicking() {
    // Any prefix of a real envelope's path header must fail to decode
    // cleanly, and arbitrary junk must never panic.
    let env = Envelope::seal(
        InstancePath::of(setupfree_net::PathSeg::new(3, 7)),
        &(42u64, vec![1u8, 2, 3]),
    );
    let bytes = setupfree::wire::to_bytes(&env);
    for cut in 0..(1 + env.path.as_bytes().len()) {
        assert!(setupfree::wire::from_bytes::<Envelope>(&bytes[..cut]).is_err());
    }
    // A path-length byte that is not a multiple of the segment size.
    assert!(setupfree::wire::from_bytes::<Envelope>(&[1, 0xaa]).is_err());
    // A path-length byte beyond the depth limit.
    let mut deep = vec![255u8];
    deep.extend(std::iter::repeat_n(0u8, 255));
    assert!(setupfree::wire::from_bytes::<Envelope>(&deep).is_err());
}
