//! Cross-crate integration tests: the paper's complete protocol stack
//! (Seeding → AVSS → WCS → Coin → ABA → Election → VBA) exercised end-to-end
//! in the asynchronous simulator under adversarial scheduling, crash faults
//! and maliciously generated keys.

use std::sync::Arc;

use setupfree::prelude::*;
use setupfree::net::SilentParty;
use setupfree_aba::MmrAbaFactory;
use setupfree_core::coin::CoinProtocolFactory;

fn keys(n: usize, seed: u64) -> (Arc<Keyring>, Vec<Arc<PartySecrets>>) {
    let (keyring, secrets) = generate_pki(n, seed);
    (Arc::new(keyring), secrets.into_iter().map(Arc::new).collect())
}

type FullElection = Election<MmrAbaFactory<CoinProtocolFactory>>;

fn election_parties(
    n: usize,
    sid: &str,
    keyring: &Arc<Keyring>,
    secrets: &[Arc<PartySecrets>],
) -> Vec<BoxedParty<<FullElection as ProtocolInstance>::Message, ElectionOutput>> {
    (0..n)
        .map(|i| {
            let aba = setup_free_aba_factory(PartyId(i), keyring.clone(), secrets[i].clone());
            Box::new(Election::new(Sid::new(sid), PartyId(i), keyring.clone(), secrets[i].clone(), aba))
                as BoxedParty<<FullElection as ProtocolInstance>::Message, ElectionOutput>
        })
        .collect()
}

#[test]
fn election_full_stack_agreement_across_schedules() {
    let n = 4;
    let (keyring, secrets) = keys(n, 1);
    for seed in 0..3u64 {
        let sid = format!("it-election-{seed}");
        let mut sim = Simulation::new(
            election_parties(n, &sid, &keyring, &secrets),
            Box::new(RandomScheduler::new(seed)),
        );
        let report = sim.run(1 << 30);
        assert_eq!(report.reason, StopReason::AllOutputs, "seed {seed}");
        let outs: Vec<ElectionOutput> = sim.outputs().into_iter().flatten().collect();
        assert!(outs.windows(2).all(|w| w[0] == w[1]), "perfect agreement, seed {seed}");
        assert!(outs[0].leader.index() < n);
    }
}

#[test]
fn election_full_stack_tolerates_a_silent_party() {
    let n = 4;
    let (keyring, secrets) = keys(n, 2);
    let mut parties = election_parties(n, "it-election-crash", &keyring, &secrets);
    parties[1] = Box::new(SilentParty::new());
    let mut sim = Simulation::new(parties, Box::new(RandomScheduler::new(9)));
    sim.mark_byzantine(PartyId(1));
    let report = sim.run(1 << 30);
    assert_eq!(report.reason, StopReason::AllOutputs);
    let outs: Vec<ElectionOutput> = sim
        .outputs()
        .into_iter()
        .enumerate()
        .filter(|(i, _)| *i != 1)
        .filter_map(|(_, o)| o)
        .collect();
    assert_eq!(outs.len(), 3);
    assert!(outs.windows(2).all(|w| w[0] == w[1]));
}

#[test]
fn coin_with_gather_core_set_also_terminates_and_agrees_often() {
    // The ablation mode (conventional RBC gather instead of WCS) must be a
    // functioning coin too — it is the cost, not the correctness, that
    // differs.
    let n = 4;
    let (keyring, secrets) = keys(n, 3);
    let mut agreements = 0;
    let trials = 6u64;
    for t in 0..trials {
        let parties: Vec<BoxedParty<CoinMessage, CoinOutput>> = (0..n)
            .map(|i| {
                Box::new(Coin::with_core_mode(
                    Sid::new(&format!("it-gather-{t}")),
                    PartyId(i),
                    keyring.clone(),
                    secrets[i].clone(),
                    CoreSetMode::RbcGather,
                )) as BoxedParty<CoinMessage, CoinOutput>
            })
            .collect();
        let mut sim = Simulation::new(parties, Box::new(RandomScheduler::new(t)));
        let report = sim.run(1 << 28);
        assert_eq!(report.reason, StopReason::AllOutputs, "trial {t}");
        let bits: Vec<bool> = sim.outputs().into_iter().flatten().map(|o| o.bit).collect();
        if bits.windows(2).all(|w| w[0] == w[1]) {
            agreements += 1;
        }
    }
    assert!(agreements * 3 >= trials, "agreement rate {agreements}/{trials}");
}

#[test]
fn coin_remains_fair_with_maliciously_generated_keys() {
    // §3: corrupted parties may register adversarially generated key
    // material.  The Seeding-patched VRF prevents them from biasing the coin;
    // here we check the protocol still terminates and honest parties still
    // agree (under benign scheduling) even when f parties registered
    // malicious keys.
    let n = 4;
    let (keyring, secrets) = generate_pki_with_malicious(n, 4, &[3]);
    let keyring = Arc::new(keyring);
    let secrets: Vec<Arc<PartySecrets>> = secrets.into_iter().map(Arc::new).collect();
    let parties: Vec<BoxedParty<CoinMessage, CoinOutput>> = (0..n)
        .map(|i| {
            Box::new(Coin::new(Sid::new("it-malicious"), PartyId(i), keyring.clone(), secrets[i].clone()))
                as BoxedParty<CoinMessage, CoinOutput>
        })
        .collect();
    let mut sim = Simulation::new(parties, Box::new(FifoScheduler));
    let report = sim.run(1 << 28);
    assert_eq!(report.reason, StopReason::AllOutputs);
    let bits: Vec<bool> = sim.outputs().into_iter().flatten().map(|o| o.bit).collect();
    assert!(bits.windows(2).all(|w| w[0] == w[1]));
}

#[test]
fn aba_full_stack_with_crash_fault() {
    let n = 4;
    let (keyring, secrets) = keys(n, 5);
    let inputs = [true, false, true, true];
    let mut parties: Vec<BoxedParty<AbaMessage<CoinMessage>, bool>> = (0..n)
        .map(|i| {
            let factory = CoinProtocolFactory::new(PartyId(i), keyring.clone(), secrets[i].clone());
            Box::new(MmrAba::new(Sid::new("it-aba"), PartyId(i), n, keyring.f(), inputs[i], factory))
                as BoxedParty<AbaMessage<CoinMessage>, bool>
        })
        .collect();
    parties[3] = Box::new(SilentParty::new());
    let mut sim = Simulation::new(parties, Box::new(RandomScheduler::new(4)));
    sim.mark_byzantine(PartyId(3));
    let report = sim.run(1 << 30);
    assert_eq!(report.reason, StopReason::AllOutputs);
    let decided: Vec<bool> = sim
        .outputs()
        .into_iter()
        .take(3)
        .map(|o| o.expect("honest party decides"))
        .collect();
    assert!(decided.windows(2).all(|w| w[0] == w[1]), "agreement");
    assert!(inputs.contains(&decided[0]), "validity");
}

#[test]
fn vba_full_stack_external_validity_and_agreement() {
    let n = 4;
    let (keyring, secrets) = keys(n, 6);
    let predicate: Predicate = Arc::new(|v: &[u8]| !v.is_empty() && v[0] == 0x7a);

    #[derive(Clone)]
    struct Ef {
        me: PartyId,
        keyring: Arc<Keyring>,
        secrets: Arc<PartySecrets>,
    }
    impl ElectionFactory for Ef {
        type Instance = FullElection;
        fn create(&self, sid: Sid) -> FullElection {
            let aba = setup_free_aba_factory(self.me, self.keyring.clone(), self.secrets.clone());
            Election::new(sid, self.me, self.keyring.clone(), self.secrets.clone(), aba)
        }
    }

    type FullVba = Vba<Ef, MmrAbaFactory<CoinProtocolFactory>>;
    let inputs: Vec<Vec<u8>> = (0..n).map(|i| vec![0x7a, i as u8]).collect();
    let parties: Vec<BoxedParty<<FullVba as ProtocolInstance>::Message, Vec<u8>>> = (0..n)
        .map(|i| {
            let ef = Ef { me: PartyId(i), keyring: keyring.clone(), secrets: secrets[i].clone() };
            let af = setup_free_aba_factory(PartyId(i), keyring.clone(), secrets[i].clone());
            Box::new(Vba::new(
                Sid::new("it-vba"),
                PartyId(i),
                keyring.clone(),
                secrets[i].clone(),
                inputs[i].clone(),
                predicate.clone(),
                ef,
                af,
            )) as BoxedParty<<FullVba as ProtocolInstance>::Message, Vec<u8>>
        })
        .collect();
    let mut sim = Simulation::new(parties, Box::new(RandomScheduler::new(2)));
    let report = sim.run(1 << 30);
    assert_eq!(report.reason, StopReason::AllOutputs);
    let outs: Vec<Vec<u8>> = sim.outputs().into_iter().flatten().collect();
    assert!(outs.windows(2).all(|w| w[0] == w[1]), "agreement");
    assert!(predicate(&outs[0]), "external validity");
    assert!(inputs.contains(&outs[0]), "output is a proposed value");
}

#[test]
fn communication_of_the_coin_is_cubic_not_quartic() {
    // Sanity-check the headline complexity claim end-to-end from the facade:
    // growing n from 4 to 10 must grow the coin's communication by far less
    // than the n⁴ baseline would (10/4)⁴ ≈ 39×.
    let measure = |n: usize| {
        let (keyring, secrets) = keys(n, 7);
        let parties: Vec<BoxedParty<CoinMessage, CoinOutput>> = (0..n)
            .map(|i| {
                Box::new(Coin::new(Sid::new("it-scale"), PartyId(i), keyring.clone(), secrets[i].clone()))
                    as BoxedParty<CoinMessage, CoinOutput>
            })
            .collect();
        let mut sim = Simulation::new(parties, Box::new(FifoScheduler));
        let report = sim.run(1 << 30);
        assert_eq!(report.reason, StopReason::AllOutputs);
        sim.metrics().honest_bytes as f64
    };
    let b4 = measure(4);
    let b10 = measure(10);
    let growth = b10 / b4;
    // (10/4)^3 ≈ 15.6; allow generous slack but stay far from the ≈ 39× of n⁴.
    assert!(growth < 30.0, "growth {growth:.1}× looks super-cubic");
    assert!(growth > 5.0, "growth {growth:.1}× suspiciously small");
}
