//! Cross-crate integration tests: the paper's complete protocol stack
//! (Seeding → AVSS → WCS → Coin → ABA → Election → VBA) exercised end-to-end
//! through the shared adversarial harness (`setupfree-testkit`) — every
//! ensemble runs across a sweep of seeded schedulers, with crash faults and
//! maliciously generated keys, and the agreement/validity/termination
//! invariants are asserted uniformly per schedule.

use std::sync::Arc;

use setupfree::prelude::*;
use setupfree_aba::MmrAbaFactory;
use setupfree_core::coin::CoinProtocolFactory;
use setupfree_testkit::{assert_agreement_sweep, sweep, Adversary, Ensemble};

fn keys(n: usize, seed: u64) -> (Arc<Keyring>, Vec<Arc<PartySecrets>>) {
    let (keyring, secrets) = generate_pki(n, seed);
    (Arc::new(keyring), secrets.into_iter().map(Arc::new).collect())
}

type FullElection = Election<MmrAbaFactory<CoinProtocolFactory>>;
type ElectionMsg = <FullElection as ProtocolInstance>::Message;

fn election_ensemble(
    n: usize,
    sid: &str,
    keyring: &Arc<Keyring>,
    secrets: &[Arc<PartySecrets>],
) -> Ensemble<ElectionMsg, ElectionOutput> {
    let sid = Sid::new(sid);
    Ensemble::build(n, |i| {
        let aba = setup_free_aba_factory(i, keyring.clone(), secrets[i.index()].clone());
        Box::new(Election::new(
            sid.clone(),
            i,
            keyring.clone(),
            secrets[i.index()].clone(),
            aba,
        )) as BoxedParty<ElectionMsg, ElectionOutput>
    })
}

/// The acceptance bar for this repo: the full-stack election must reach
/// perfect agreement under FIFO, several distinct random schedules, a
/// targeted-delay adversary and a partition — all through one harness call.
#[test]
fn election_full_stack_agreement_across_schedules() {
    let n = 4;
    let (keyring, secrets) = keys(n, 1);
    let runs = assert_agreement_sweep(&Adversary::standard_sweep(n, 3), 1 << 30, |adv| {
        // A schedule-distinct session id gives every run fresh protocol
        // randomness while staying fully reproducible.
        election_ensemble(n, &format!("it-election-{adv}"), &keyring, &secrets)
    });
    for run in &runs {
        run.assert_validity(|out| out.leader.index() < n);
    }
}

#[test]
fn election_full_stack_tolerates_a_silent_party() {
    let n = 4;
    let (keyring, secrets) = keys(n, 2);
    let runs = assert_agreement_sweep(&Adversary::random_sweep(3), 1 << 30, |adv| {
        election_ensemble(n, &format!("it-election-crash-{adv}"), &keyring, &secrets).silence(1)
    });
    for run in &runs {
        assert_eq!(run.honest_outputs().len(), 3, "under {}", run.adversary);
    }
}

#[test]
fn coin_with_gather_core_set_also_terminates_and_agrees_often() {
    // The ablation mode (conventional RBC gather instead of WCS) must be a
    // functioning coin too — it is the cost, not the correctness, that
    // differs.  Termination is asserted per schedule by the harness;
    // agreement of a weak coin is only probabilistic, so it is counted.
    let n = 4;
    let (keyring, secrets) = keys(n, 3);
    let trials = 6;
    let runs = sweep(&Adversary::random_sweep(trials), 1 << 28, |adv| {
        let sid = Sid::new(&format!("it-gather-{adv}"));
        Ensemble::build(n, |i| {
            Box::new(Coin::with_core_mode(
                sid.clone(),
                i,
                keyring.clone(),
                secrets[i.index()].clone(),
                CoreSetMode::RbcGather,
            )) as BoxedParty<Envelope, CoinOutput>
        })
    });
    let mut agreements = 0u64;
    for run in &runs {
        run.assert_termination();
        let bits: Vec<bool> = run.honest_outputs().iter().map(|o| o.bit).collect();
        if bits.windows(2).all(|w| w[0] == w[1]) {
            agreements += 1;
        }
    }
    assert!(agreements * 3 >= trials, "agreement rate {agreements}/{trials}");
}

#[test]
fn coin_remains_fair_with_maliciously_generated_keys() {
    // §3: corrupted parties may register adversarially generated key
    // material.  The Seeding-patched VRF prevents them from biasing the coin;
    // here we check the protocol still terminates and honest parties still
    // agree (under benign scheduling) even when f parties registered
    // malicious keys.
    let n = 4;
    let (keyring, secrets) = generate_pki_with_malicious(n, 4, &[3]);
    let keyring = Arc::new(keyring);
    let secrets: Vec<Arc<PartySecrets>> = secrets.into_iter().map(Arc::new).collect();
    let runs = sweep(&[Adversary::Fifo], 1 << 28, |_| {
        let sid = Sid::new("it-malicious");
        Ensemble::build(n, |i| {
            Box::new(Coin::new(sid.clone(), i, keyring.clone(), secrets[i.index()].clone()))
                as BoxedParty<Envelope, CoinOutput>
        })
    });
    for run in &runs {
        run.assert_termination();
        // Only the bit is common knowledge; `max_vrf` is speculative
        // per-party state, so whole-output agreement would be too strong.
        let bits: Vec<bool> = run.honest_outputs().iter().map(|o| o.bit).collect();
        assert!(bits.windows(2).all(|w| w[0] == w[1]), "bit agreement under {}", run.adversary);
    }
}

#[test]
fn aba_full_stack_with_crash_fault() {
    let n = 4;
    let (keyring, secrets) = keys(n, 5);
    let inputs = [true, false, true, true];
    // The full standard sweep (FIFO, 3 random schedules, targeted delay,
    // partition), each with party 3 silenced (Byzantine from the start).
    let runs = assert_agreement_sweep(&Adversary::standard_sweep(n, 3), 1 << 30, |_| {
        let sid = Sid::new("it-aba");
        Ensemble::build(n, |i| {
            let factory =
                CoinProtocolFactory::new(i, keyring.clone(), secrets[i.index()].clone());
            Box::new(MmrAba::new(sid.clone(), i, n, keyring.f(), inputs[i.index()], factory))
                as BoxedParty<Envelope, bool>
        })
        .silence(3)
    });
    for run in &runs {
        let decided = run.honest_outputs();
        assert_eq!(decided.len(), 3, "under {}", run.adversary);
        assert!(inputs.contains(&decided[0]), "validity under {}", run.adversary);
    }
}

#[test]
fn vba_full_stack_external_validity_and_agreement() {
    let n = 4;
    let (keyring, secrets) = keys(n, 6);
    let predicate: Predicate = Arc::new(|v: &[u8]| !v.is_empty() && v[0] == 0x7a);

    #[derive(Clone)]
    struct Ef {
        me: PartyId,
        keyring: Arc<Keyring>,
        secrets: Arc<PartySecrets>,
    }
    impl ElectionFactory for Ef {
        type Instance = FullElection;
        fn create(&self, sid: Sid) -> FullElection {
            let aba = setup_free_aba_factory(self.me, self.keyring.clone(), self.secrets.clone());
            Election::new(sid, self.me, self.keyring.clone(), self.secrets.clone(), aba)
        }
    }

    type FullVba = Vba<Ef, MmrAbaFactory<CoinProtocolFactory>>;
    type VbaMsg = <FullVba as ProtocolInstance>::Message;
    let inputs: Vec<Vec<u8>> = (0..n).map(|i| vec![0x7a, i as u8]).collect();
    let runs = assert_agreement_sweep(&Adversary::random_sweep(3), 1 << 30, |adv| {
        let sid = Sid::new(&format!("it-vba-{adv}"));
        let inputs = inputs.clone();
        Ensemble::build(n, |i| {
            let ef = Ef {
                me: i,
                keyring: keyring.clone(),
                secrets: secrets[i.index()].clone(),
            };
            let af = setup_free_aba_factory(i, keyring.clone(), secrets[i.index()].clone());
            Box::new(Vba::new(
                sid.clone(),
                i,
                keyring.clone(),
                secrets[i.index()].clone(),
                inputs[i.index()].clone(),
                predicate.clone(),
                ef,
                af,
            )) as BoxedParty<VbaMsg, Vec<u8>>
        })
    });
    for run in &runs {
        run.assert_validity(|out| predicate(out));
        run.assert_validity(|out| inputs.contains(out));
    }
}

#[test]
fn communication_of_the_coin_is_cubic_not_quartic() {
    // Sanity-check the headline complexity claim end-to-end from the facade:
    // growing n from 4 to 10 must grow the coin's communication by far less
    // than the n⁴ baseline would (10/4)⁴ ≈ 39×.
    let measure = |n: usize| {
        let (keyring, secrets) = keys(n, 7);
        let runs = sweep(&[Adversary::Fifo], 1 << 30, |_| {
            let sid = Sid::new("it-scale");
            Ensemble::build(n, |i| {
                Box::new(Coin::new(sid.clone(), i, keyring.clone(), secrets[i.index()].clone()))
                    as BoxedParty<Envelope, CoinOutput>
            })
        });
        // Termination only: this test measures communication.  Whole-output
        // agreement would be too strong (`max_vrf` is speculative per-party
        // state), and bit agreement is covered by the dedicated coin tests.
        runs[0].assert_termination();
        runs[0].metrics.honest_bytes as f64
    };
    let b4 = measure(4);
    let b10 = measure(10);
    let growth = b10 / b4;
    // (10/4)^3 ≈ 15.6; allow generous slack but stay far from the ≈ 39× of n⁴.
    assert!(growth < 30.0, "growth {growth:.1}× looks super-cubic");
    assert!(growth > 5.0, "growth {growth:.1}× suspiciously small");
}
