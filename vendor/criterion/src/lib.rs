//! A minimal, API-compatible subset of the `criterion` benchmark harness.
//!
//! The build environment has no network access, so the real `criterion`
//! cannot be fetched from crates.io.  This vendored stand-in implements the
//! surface the `setupfree` benches use — [`Criterion::bench_function`],
//! [`Bencher::iter`], [`Bencher::iter_batched`], [`BatchSize`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros — with a simple
//! wall-clock measurement loop instead of upstream's statistical analysis.
//!
//! Behaviour:
//!
//! * `cargo bench` prints `name  median  (min … max)` per benchmark from a
//!   fixed number of timed batches after a short warm-up.
//! * When the binary is invoked with `--test` (as `cargo test --benches`
//!   does), every routine runs exactly once so the target stays fast and
//!   still smoke-tests the bench code.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], criterion's optimisation barrier.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How batched setup output is sized (accepted for API compatibility; the
/// measurement loop treats every variant the same).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// Fresh setup for every single iteration.
    PerIteration,
    /// A fixed number of batches.
    NumBatches(u64),
    /// A fixed number of iterations per batch.
    NumIterations(u64),
}

/// Times one benchmark routine.
#[derive(Debug)]
pub struct Bencher {
    smoke_test: bool,
    samples: Vec<Duration>,
}

impl Bencher {
    fn new(smoke_test: bool) -> Self {
        Bencher { smoke_test, samples: Vec::new() }
    }

    /// Measures a routine by running it in timed batches.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        self.iter_batched(|| (), |()| routine(), BatchSize::SmallInput);
    }

    /// Measures a routine whose input is rebuilt (untimed) for every batch.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        if self.smoke_test {
            black_box(routine(setup()));
            self.samples.push(Duration::ZERO);
            return;
        }
        // Warm-up, then size batches so one batch takes ≳ 1 ms.
        let mut per_batch = 1u32;
        loop {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            let once = start.elapsed();
            if once >= Duration::from_millis(1) || per_batch >= 1 << 20 {
                break;
            }
            per_batch *= 2;
            if once * per_batch >= Duration::from_millis(1) {
                break;
            }
        }
        const SAMPLES: usize = 12;
        for _ in 0..SAMPLES {
            let inputs: Vec<I> = (0..per_batch).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            self.samples.push(start.elapsed() / per_batch);
        }
    }
}

/// The benchmark registry/driver (subset of upstream's `Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {
    smoke_test: bool,
}

impl Criterion {
    fn from_args() -> Self {
        Criterion { smoke_test: std::env::args().any(|a| a == "--test") }
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.smoke_test);
        f(&mut b);
        if self.smoke_test {
            println!("{id:<40} ok (smoke test)");
            return self;
        }
        b.samples.sort();
        let median = b.samples[b.samples.len() / 2];
        let min = b.samples.first().copied().unwrap_or_default();
        let max = b.samples.last().copied().unwrap_or_default();
        println!("{id:<40} {median:>12.2?}  ({min:.2?} … {max:.2?})");
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_string() }
    }
}

/// A named group of benchmarks (subset of upstream's `BenchmarkGroup`).
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the measurement loop uses its own
    /// fixed sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark under `group_name/id`.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{id}", self.name);
        self.criterion.bench_function(&full, f);
        self
    }

    /// Ends the group (a no-op here; upstream emits summary artifacts).
    pub fn finish(self) {}
}

/// Declares a benchmark group function, like upstream's `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        /// Runs this group's benchmarks.
        pub fn $group() {
            let mut criterion = $crate::Criterion::__from_cli();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, like upstream's `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

impl Criterion {
    /// Internal constructor used by [`criterion_group!`]; not public API.
    #[doc(hidden)]
    pub fn __from_cli() -> Self {
        Criterion::from_args()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_once() {
        let mut c = Criterion { smoke_test: true };
        let mut runs = 0;
        c.bench_function("noop", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 1);
    }

    #[test]
    fn batched_smoke_calls_setup_and_routine() {
        let mut c = Criterion { smoke_test: true };
        let mut made = 0;
        c.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    made += 1;
                    7u64
                },
                |v| v * 2,
                BatchSize::SmallInput,
            )
        });
        assert_eq!(made, 1);
    }
}
