//! A minimal, deterministic, API-compatible subset of the `rand` crate.
//!
//! The build environment has no network access, so the real `rand` cannot be
//! fetched from crates.io.  This vendored stand-in implements exactly the
//! surface the `setupfree` workspace uses — [`Rng::gen`], [`Rng::gen_range`],
//! [`SeedableRng::seed_from_u64`] and [`rngs::StdRng`] — on top of the
//! xoshiro256++ generator (public domain construction by Blackman & Vigna).
//!
//! The generator is **not** the same stream as upstream `rand`'s `StdRng`
//! (ChaCha12); every use in this workspace only relies on determinism and
//! statistical quality, never on a specific stream.  It is also **not**
//! cryptographically secure — the workspace's cryptography draws secrets
//! through its own hash-based constructions and only uses this crate for
//! reproducible test/simulation randomness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Low-level source of randomness: the required core of every generator.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from the generator's full output
/// range (the `Standard` distribution of upstream `rand`).
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl<const N: usize> Standard for [u8; N] {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

/// Integer types usable with [`Rng::gen_range`].
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws a value uniformly from `[low, high)` (unbiased, by rejection).
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as u64).wrapping_sub(low as u64);
                // Rejection sampling over the largest multiple of `span`
                // representable in 64 bits, for an unbiased draw.
                let zone = u64::MAX - (u64::MAX - span + 1) % span;
                loop {
                    let v = rng.next_u64();
                    if v <= zone {
                        // Two's-complement wrap-around lands in range for
                        // signed types as well.
                        return low.wrapping_add((v % span) as $t);
                    }
                }
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience methods layered over [`RngCore`] (blanket-implemented).
pub trait Rng: RngCore {
    /// Draws a value of any [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from a half-open `low..high` range.
    fn gen_range<T: SampleUniform>(&mut self, range: core::ops::Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Constructs the generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a `u64`, expanded via SplitMix64 —
    /// the standard convenience for reproducible tests.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let len = chunk.len();
            chunk.copy_from_slice(&bytes[..len]);
        }
        Self::from_seed(seed)
    }
}

/// Concrete generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Unlike upstream `rand`, this is not a CSPRNG — see the crate docs.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // An all-zero state would be a fixed point of the generator.
            if s == [0, 0, 0, 0] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 4);
    }

    #[test]
    fn gen_range_respects_bounds_and_covers() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(0usize..10);
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn fill_bytes_handles_unaligned_lengths() {
        use super::RngCore;
        let mut rng = StdRng::seed_from_u64(9);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
