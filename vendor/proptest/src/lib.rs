//! A minimal, deterministic, API-compatible subset of the `proptest` crate.
//!
//! The build environment has no network access, so the real `proptest`
//! cannot be fetched from crates.io.  This vendored stand-in implements the
//! surface the `setupfree` workspace uses: the [`proptest!`] macro over
//! named-argument strategies, [`any`], integer-range strategies, tuple
//! strategies, [`collection::vec`], [`option::of`], the `prop_assert*` /
//! [`prop_assume!`] macros and [`ProptestConfig::with_cases`].
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.**  A failing case reports its deterministic case seed;
//!   re-running the test replays the identical inputs.
//! * **Deterministic by default.**  Case `i` of test `name` is generated
//!   from `fnv1a(name) ^ i`, so failures reproduce across machines with no
//!   `PROPTEST_` environment plumbing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Runner configuration (subset of upstream's `ProptestConfig`).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; this workspace's substrates do real
        // (toy-sized) public-key cryptography per case, so keep the default
        // an order of magnitude smaller while staying statistically useful.
        ProptestConfig { cases: 32 }
    }
}

impl ProptestConfig {
    /// A configuration requiring `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was rejected by [`prop_assume!`]; it does not count.
    Reject(String),
    /// The case failed an assertion.
    Fail(String),
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            TestCaseError::Fail(m) => write!(f, "failed: {m}"),
        }
    }
}

/// The deterministic generator handed to strategies (one per case).
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Creates the generator for one case from its case seed.
    pub fn from_case_seed(seed: u64) -> Self {
        TestRng(StdRng::seed_from_u64(seed))
    }

    /// Draws 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// Draws a uniform `usize` in `[0, bound)`.
    pub fn below(&mut self, bound: usize) -> usize {
        self.0.gen_range(0..bound.max(1))
    }
}

/// FNV-1a over a string — used to derive a per-test base seed from the test
/// name so distinct tests draw distinct streams.
pub fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A generator of values of one type (upstream's `Strategy`, sans shrinking).
pub trait Strategy {
    /// The type of generated values.
    type Value: fmt::Debug;

    /// Generates one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through a function.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Keeps only generated values satisfying a predicate; sampling retries
    /// (up to a bound) until one passes.
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { source: self, f, whence }
    }
}

/// Strategy combinator returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.sample(rng))
    }
}

/// Strategy combinator returned by [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    source: S,
    f: F,
    whence: &'static str,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1024 {
            let v = self.source.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter '{}' rejected 1024 consecutive samples", self.whence)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Types with a canonical "any value" strategy (upstream's `Arbitrary`).
pub trait Arbitrary: fmt::Debug + Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        let mut out = [0u8; N];
        for b in out.iter_mut() {
            *b = rng.next_u64() as u8;
        }
        out
    }
}

/// Strategy for an [`Arbitrary`] type; created by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<fn() -> T>);

/// The full-range strategy for `T` (upstream's `any::<T>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Integer types whose `Range` forms a strategy.
pub trait RangeSample: Copy + fmt::Debug {
    /// Draws uniformly from `[low, high)`.
    fn range_sample(rng: &mut TestRng, low: Self, high: Self) -> Self;
}

macro_rules! impl_range_sample {
    ($($t:ty),*) => {$(
        impl RangeSample for $t {
            fn range_sample(rng: &mut TestRng, low: Self, high: Self) -> Self {
                assert!(low < high, "strategy range is empty");
                let span = (high as u64).wrapping_sub(low as u64);
                low.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
impl_range_sample!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: RangeSample> Strategy for Range<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::range_sample(rng, self.start, self.end)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident: $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// String-literal strategies: upstream treats a `&str` pattern as a regex.
/// This subset supports only the patterns the workspace uses — `".*"` and
/// `".+"` — generating arbitrary (possibly multi-byte) Unicode strings.
impl Strategy for str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let min_len = match self {
            ".*" => 0,
            ".+" => 1,
            other => panic!(
                "the vendored proptest subset only supports the \".*\" and \".+\" \
                 string patterns, got {other:?}"
            ),
        };
        let len = min_len + rng.below(24);
        (0..len)
            .map(|_| {
                // Mix ASCII with astral-plane characters to exercise
                // multi-byte UTF-8 encoding paths.
                match rng.next_u64() % 4 {
                    0 => char::from_u32(0x1F300 + (rng.next_u64() % 0xFF) as u32).unwrap_or('x'),
                    1 => char::from_u32(0x00A1 + (rng.next_u64() % 0x2000) as u32).unwrap_or('y'),
                    _ => (b' ' + (rng.next_u64() % 95) as u8) as char,
                }
            })
            .collect()
    }
}

/// A strategy that always yields a clone of one value (upstream's `Just`).
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// An inclusive-of-start, exclusive-of-end length range for collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "collection size range is empty");
        SizeRange { lo: r.start, hi: r.end }
    }
}

impl From<i32> for SizeRange {
    fn from(n: i32) -> Self {
        SizeRange::from(n as usize)
    }
}

impl From<Range<i32>> for SizeRange {
    fn from(r: Range<i32>) -> Self {
        SizeRange::from(r.start as usize..r.end as usize)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    /// Strategy producing `Vec`s of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let (lo, hi) = (self.size.lo, self.size.hi);
            let len = lo + rng.below(hi - lo);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// `Option` strategies.
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy producing `Option`s of values from an inner strategy.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S>(S);

    /// `Some` three times out of four, like upstream's default.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            if rng.next_u64().is_multiple_of(4) {
                None
            } else {
                Some(self.0.sample(rng))
            }
        }
    }
}

/// The common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Any, Arbitrary,
        Just, ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

/// Defines property tests: `proptest! { #[test] fn f(x in strat) { .. } }`.
///
/// Each test runs `config.cases` deterministic cases; assertion macros
/// short-circuit the case, [`prop_assume!`] discards it without counting.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let base = $crate::fnv1a(stringify!($name));
            let mut passed: u32 = 0;
            let mut attempts: u64 = 0;
            while passed < config.cases {
                assert!(
                    attempts < (config.cases as u64) * 64 + 1024,
                    "proptest '{}': too many rejected cases ({} attempts, {} passed)",
                    stringify!($name), attempts, passed
                );
                let case_seed = base ^ attempts;
                attempts += 1;
                let mut __rng = $crate::TestRng::from_case_seed(case_seed);
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)*
                let result: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                match result {
                    Ok(()) => passed += 1,
                    Err($crate::TestCaseError::Reject(_)) => {}
                    Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest '{}' case seed {} failed: {}",
                            stringify!($name), case_seed, msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_impl!(($config) $($rest)*);
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` (left: {:?}, right: {:?})",
            stringify!($left), stringify!($right), l, r
        );
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}` (both: {:?})",
            stringify!($left), stringify!($right), l
        );
    }};
}

/// Discards the current case (without failing) unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in 0u64..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn vec_lengths_respect_size_range(v in crate::collection::vec(any::<u8>(), 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6, "len {}", v.len());
        }

        #[test]
        fn assume_discards_without_failing(x in 0u64..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }

        #[test]
        fn tuples_and_options_sample(pair in (any::<u32>(), any::<bool>()), o in crate::option::of(any::<u64>())) {
            let (_a, _b) = pair;
            if let Some(v) = o {
                prop_assert_eq!(v, v);
            }
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = TestRng::from_case_seed(5);
        let mut b = TestRng::from_case_seed(5);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
