/root/repo/target/release/libsetupfree_wire.rlib: /root/repo/crates/wire/src/lib.rs
