/root/repo/target/release/deps/table1-91cc54c99cf90bc6.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-91cc54c99cf90bc6: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
