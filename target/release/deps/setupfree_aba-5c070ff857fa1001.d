/root/repo/target/release/deps/setupfree_aba-5c070ff857fa1001.d: crates/aba/src/lib.rs

/root/repo/target/release/deps/libsetupfree_aba-5c070ff857fa1001.rlib: crates/aba/src/lib.rs

/root/repo/target/release/deps/libsetupfree_aba-5c070ff857fa1001.rmeta: crates/aba/src/lib.rs

crates/aba/src/lib.rs:
