/root/repo/target/release/deps/fig_component_scaling-d01c3dac9ce90640.d: crates/bench/src/bin/fig_component_scaling.rs

/root/repo/target/release/deps/fig_component_scaling-d01c3dac9ce90640: crates/bench/src/bin/fig_component_scaling.rs

crates/bench/src/bin/fig_component_scaling.rs:
