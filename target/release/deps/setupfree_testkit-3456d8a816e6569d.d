/root/repo/target/release/deps/setupfree_testkit-3456d8a816e6569d.d: crates/testkit/src/lib.rs

/root/repo/target/release/deps/libsetupfree_testkit-3456d8a816e6569d.rlib: crates/testkit/src/lib.rs

/root/repo/target/release/deps/libsetupfree_testkit-3456d8a816e6569d.rmeta: crates/testkit/src/lib.rs

crates/testkit/src/lib.rs:
