/root/repo/target/release/deps/setupfree_rbc-b59c6ccc62145cd7.d: crates/rbc/src/lib.rs

/root/repo/target/release/deps/libsetupfree_rbc-b59c6ccc62145cd7.rlib: crates/rbc/src/lib.rs

/root/repo/target/release/deps/libsetupfree_rbc-b59c6ccc62145cd7.rmeta: crates/rbc/src/lib.rs

crates/rbc/src/lib.rs:
