/root/repo/target/release/deps/criterion-c2d05758bbfbfd28.d: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-c2d05758bbfbfd28.rlib: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-c2d05758bbfbfd28.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
