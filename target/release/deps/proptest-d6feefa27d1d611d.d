/root/repo/target/release/deps/proptest-d6feefa27d1d611d.d: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-d6feefa27d1d611d.rlib: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-d6feefa27d1d611d.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
