/root/repo/target/release/deps/setupfree_baselines-039901b38556681d.d: crates/baselines/src/lib.rs

/root/repo/target/release/deps/libsetupfree_baselines-039901b38556681d.rlib: crates/baselines/src/lib.rs

/root/repo/target/release/deps/libsetupfree_baselines-039901b38556681d.rmeta: crates/baselines/src/lib.rs

crates/baselines/src/lib.rs:
