/root/repo/target/release/deps/setupfree_vba-2d0d08bf91fb97b7.d: crates/vba/src/lib.rs

/root/repo/target/release/deps/libsetupfree_vba-2d0d08bf91fb97b7.rlib: crates/vba/src/lib.rs

/root/repo/target/release/deps/libsetupfree_vba-2d0d08bf91fb97b7.rmeta: crates/vba/src/lib.rs

crates/vba/src/lib.rs:
