/root/repo/target/release/deps/protocols-2c8989ccfcd913b1.d: crates/bench/benches/protocols.rs

/root/repo/target/release/deps/protocols-2c8989ccfcd913b1: crates/bench/benches/protocols.rs

crates/bench/benches/protocols.rs:
