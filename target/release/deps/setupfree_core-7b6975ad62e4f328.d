/root/repo/target/release/deps/setupfree_core-7b6975ad62e4f328.d: crates/core/src/lib.rs crates/core/src/coin.rs crates/core/src/election.rs crates/core/src/traits.rs crates/core/src/trusted.rs

/root/repo/target/release/deps/libsetupfree_core-7b6975ad62e4f328.rlib: crates/core/src/lib.rs crates/core/src/coin.rs crates/core/src/election.rs crates/core/src/traits.rs crates/core/src/trusted.rs

/root/repo/target/release/deps/libsetupfree_core-7b6975ad62e4f328.rmeta: crates/core/src/lib.rs crates/core/src/coin.rs crates/core/src/election.rs crates/core/src/traits.rs crates/core/src/trusted.rs

crates/core/src/lib.rs:
crates/core/src/coin.rs:
crates/core/src/election.rs:
crates/core/src/traits.rs:
crates/core/src/trusted.rs:
