/root/repo/target/release/deps/setupfree_avss-d70cf589484822c6.d: crates/avss/src/lib.rs crates/avss/src/harness.rs

/root/repo/target/release/deps/libsetupfree_avss-d70cf589484822c6.rlib: crates/avss/src/lib.rs crates/avss/src/harness.rs

/root/repo/target/release/deps/libsetupfree_avss-d70cf589484822c6.rmeta: crates/avss/src/lib.rs crates/avss/src/harness.rs

crates/avss/src/lib.rs:
crates/avss/src/harness.rs:
