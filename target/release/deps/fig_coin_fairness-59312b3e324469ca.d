/root/repo/target/release/deps/fig_coin_fairness-59312b3e324469ca.d: crates/bench/src/bin/fig_coin_fairness.rs

/root/repo/target/release/deps/fig_coin_fairness-59312b3e324469ca: crates/bench/src/bin/fig_coin_fairness.rs

crates/bench/src/bin/fig_coin_fairness.rs:
