/root/repo/target/release/deps/fig_beacon-4e48a482b1d29fec.d: crates/bench/src/bin/fig_beacon.rs

/root/repo/target/release/deps/fig_beacon-4e48a482b1d29fec: crates/bench/src/bin/fig_beacon.rs

crates/bench/src/bin/fig_beacon.rs:
