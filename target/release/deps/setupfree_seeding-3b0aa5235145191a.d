/root/repo/target/release/deps/setupfree_seeding-3b0aa5235145191a.d: crates/seeding/src/lib.rs

/root/repo/target/release/deps/libsetupfree_seeding-3b0aa5235145191a.rlib: crates/seeding/src/lib.rs

/root/repo/target/release/deps/libsetupfree_seeding-3b0aa5235145191a.rmeta: crates/seeding/src/lib.rs

crates/seeding/src/lib.rs:
