/root/repo/target/release/deps/setupfree_net-1082258f6ac879d4.d: crates/net/src/lib.rs crates/net/src/faults.rs crates/net/src/metrics.rs crates/net/src/party.rs crates/net/src/protocol.rs crates/net/src/scheduler.rs crates/net/src/sim.rs

/root/repo/target/release/deps/libsetupfree_net-1082258f6ac879d4.rlib: crates/net/src/lib.rs crates/net/src/faults.rs crates/net/src/metrics.rs crates/net/src/party.rs crates/net/src/protocol.rs crates/net/src/scheduler.rs crates/net/src/sim.rs

/root/repo/target/release/deps/libsetupfree_net-1082258f6ac879d4.rmeta: crates/net/src/lib.rs crates/net/src/faults.rs crates/net/src/metrics.rs crates/net/src/party.rs crates/net/src/protocol.rs crates/net/src/scheduler.rs crates/net/src/sim.rs

crates/net/src/lib.rs:
crates/net/src/faults.rs:
crates/net/src/metrics.rs:
crates/net/src/party.rs:
crates/net/src/protocol.rs:
crates/net/src/scheduler.rs:
crates/net/src/sim.rs:
