/root/repo/target/release/deps/crypto-59f95e70ea537896.d: crates/bench/benches/crypto.rs

/root/repo/target/release/deps/crypto-59f95e70ea537896: crates/bench/benches/crypto.rs

crates/bench/benches/crypto.rs:
