/root/repo/target/release/deps/setupfree-299d86219680852a.d: src/lib.rs

/root/repo/target/release/deps/libsetupfree-299d86219680852a.rlib: src/lib.rs

/root/repo/target/release/deps/libsetupfree-299d86219680852a.rmeta: src/lib.rs

src/lib.rs:
