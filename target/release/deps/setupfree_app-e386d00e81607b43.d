/root/repo/target/release/deps/setupfree_app-e386d00e81607b43.d: crates/app/src/lib.rs crates/app/src/adkg.rs crates/app/src/beacon.rs

/root/repo/target/release/deps/libsetupfree_app-e386d00e81607b43.rlib: crates/app/src/lib.rs crates/app/src/adkg.rs crates/app/src/beacon.rs

/root/repo/target/release/deps/libsetupfree_app-e386d00e81607b43.rmeta: crates/app/src/lib.rs crates/app/src/adkg.rs crates/app/src/beacon.rs

crates/app/src/lib.rs:
crates/app/src/adkg.rs:
crates/app/src/beacon.rs:
