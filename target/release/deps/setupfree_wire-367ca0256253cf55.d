/root/repo/target/release/deps/setupfree_wire-367ca0256253cf55.d: crates/wire/src/lib.rs

/root/repo/target/release/deps/libsetupfree_wire-367ca0256253cf55.rlib: crates/wire/src/lib.rs

/root/repo/target/release/deps/libsetupfree_wire-367ca0256253cf55.rmeta: crates/wire/src/lib.rs

crates/wire/src/lib.rs:
