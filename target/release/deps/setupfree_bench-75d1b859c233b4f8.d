/root/repo/target/release/deps/setupfree_bench-75d1b859c233b4f8.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libsetupfree_bench-75d1b859c233b4f8.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libsetupfree_bench-75d1b859c233b4f8.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
