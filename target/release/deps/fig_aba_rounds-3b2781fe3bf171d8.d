/root/repo/target/release/deps/fig_aba_rounds-3b2781fe3bf171d8.d: crates/bench/src/bin/fig_aba_rounds.rs

/root/repo/target/release/deps/fig_aba_rounds-3b2781fe3bf171d8: crates/bench/src/bin/fig_aba_rounds.rs

crates/bench/src/bin/fig_aba_rounds.rs:
