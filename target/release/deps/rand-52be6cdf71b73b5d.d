/root/repo/target/release/deps/rand-52be6cdf71b73b5d.d: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-52be6cdf71b73b5d.rlib: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-52be6cdf71b73b5d.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
