/root/repo/target/release/deps/setupfree_crypto-15ff36a962f491f1.d: crates/crypto/src/lib.rs crates/crypto/src/group.rs crates/crypto/src/hash.rs crates/crypto/src/keyring.rs crates/crypto/src/modarith.rs crates/crypto/src/pairing.rs crates/crypto/src/params.rs crates/crypto/src/pedersen.rs crates/crypto/src/poly.rs crates/crypto/src/pvss.rs crates/crypto/src/scalar.rs crates/crypto/src/sig.rs crates/crypto/src/vrf.rs

/root/repo/target/release/deps/libsetupfree_crypto-15ff36a962f491f1.rlib: crates/crypto/src/lib.rs crates/crypto/src/group.rs crates/crypto/src/hash.rs crates/crypto/src/keyring.rs crates/crypto/src/modarith.rs crates/crypto/src/pairing.rs crates/crypto/src/params.rs crates/crypto/src/pedersen.rs crates/crypto/src/poly.rs crates/crypto/src/pvss.rs crates/crypto/src/scalar.rs crates/crypto/src/sig.rs crates/crypto/src/vrf.rs

/root/repo/target/release/deps/libsetupfree_crypto-15ff36a962f491f1.rmeta: crates/crypto/src/lib.rs crates/crypto/src/group.rs crates/crypto/src/hash.rs crates/crypto/src/keyring.rs crates/crypto/src/modarith.rs crates/crypto/src/pairing.rs crates/crypto/src/params.rs crates/crypto/src/pedersen.rs crates/crypto/src/poly.rs crates/crypto/src/pvss.rs crates/crypto/src/scalar.rs crates/crypto/src/sig.rs crates/crypto/src/vrf.rs

crates/crypto/src/lib.rs:
crates/crypto/src/group.rs:
crates/crypto/src/hash.rs:
crates/crypto/src/keyring.rs:
crates/crypto/src/modarith.rs:
crates/crypto/src/pairing.rs:
crates/crypto/src/params.rs:
crates/crypto/src/pedersen.rs:
crates/crypto/src/poly.rs:
crates/crypto/src/pvss.rs:
crates/crypto/src/scalar.rs:
crates/crypto/src/sig.rs:
crates/crypto/src/vrf.rs:
