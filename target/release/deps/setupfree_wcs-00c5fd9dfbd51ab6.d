/root/repo/target/release/deps/setupfree_wcs-00c5fd9dfbd51ab6.d: crates/wcs/src/lib.rs

/root/repo/target/release/deps/libsetupfree_wcs-00c5fd9dfbd51ab6.rlib: crates/wcs/src/lib.rs

/root/repo/target/release/deps/libsetupfree_wcs-00c5fd9dfbd51ab6.rmeta: crates/wcs/src/lib.rs

crates/wcs/src/lib.rs:
