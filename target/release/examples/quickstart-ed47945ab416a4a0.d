/root/repo/target/release/examples/quickstart-ed47945ab416a4a0.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-ed47945ab416a4a0: examples/quickstart.rs

examples/quickstart.rs:
