/root/repo/target/release/examples/random_beacon-394161947fb056a5.d: examples/random_beacon.rs

/root/repo/target/release/examples/random_beacon-394161947fb056a5: examples/random_beacon.rs

examples/random_beacon.rs:
