/root/repo/target/release/examples/byzantine_avss-5c93b3b6c51972a3.d: examples/byzantine_avss.rs

/root/repo/target/release/examples/byzantine_avss-5c93b3b6c51972a3: examples/byzantine_avss.rs

examples/byzantine_avss.rs:
