/root/repo/target/release/examples/adkg-987aa9827b74b961.d: examples/adkg.rs

/root/repo/target/release/examples/adkg-987aa9827b74b961: examples/adkg.rs

examples/adkg.rs:
