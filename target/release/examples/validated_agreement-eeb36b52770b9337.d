/root/repo/target/release/examples/validated_agreement-eeb36b52770b9337.d: examples/validated_agreement.rs

/root/repo/target/release/examples/validated_agreement-eeb36b52770b9337: examples/validated_agreement.rs

examples/validated_agreement.rs:
