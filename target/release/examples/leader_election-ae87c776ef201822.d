/root/repo/target/release/examples/leader_election-ae87c776ef201822.d: examples/leader_election.rs

/root/repo/target/release/examples/leader_election-ae87c776ef201822: examples/leader_election.rs

examples/leader_election.rs:
