/root/repo/target/debug/examples/validated_agreement-ace777e41953aa70.d: examples/validated_agreement.rs Cargo.toml

/root/repo/target/debug/examples/libvalidated_agreement-ace777e41953aa70.rmeta: examples/validated_agreement.rs Cargo.toml

examples/validated_agreement.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
