/root/repo/target/debug/examples/adkg-a807b492a0e35c51.d: examples/adkg.rs

/root/repo/target/debug/examples/adkg-a807b492a0e35c51: examples/adkg.rs

examples/adkg.rs:
