/root/repo/target/debug/examples/leader_election-6508c706d356d75a.d: examples/leader_election.rs

/root/repo/target/debug/examples/leader_election-6508c706d356d75a: examples/leader_election.rs

examples/leader_election.rs:
