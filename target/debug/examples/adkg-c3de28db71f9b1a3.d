/root/repo/target/debug/examples/adkg-c3de28db71f9b1a3.d: examples/adkg.rs Cargo.toml

/root/repo/target/debug/examples/libadkg-c3de28db71f9b1a3.rmeta: examples/adkg.rs Cargo.toml

examples/adkg.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
