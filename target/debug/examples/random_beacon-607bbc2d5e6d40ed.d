/root/repo/target/debug/examples/random_beacon-607bbc2d5e6d40ed.d: examples/random_beacon.rs

/root/repo/target/debug/examples/random_beacon-607bbc2d5e6d40ed: examples/random_beacon.rs

examples/random_beacon.rs:
