/root/repo/target/debug/examples/byzantine_avss-e1fa695c2d3cffa9.d: examples/byzantine_avss.rs

/root/repo/target/debug/examples/byzantine_avss-e1fa695c2d3cffa9: examples/byzantine_avss.rs

examples/byzantine_avss.rs:
