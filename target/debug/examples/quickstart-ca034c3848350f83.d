/root/repo/target/debug/examples/quickstart-ca034c3848350f83.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-ca034c3848350f83: examples/quickstart.rs

examples/quickstart.rs:
