/root/repo/target/debug/examples/quickstart-3b5d6fa160cc64cd.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-3b5d6fa160cc64cd.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
