/root/repo/target/debug/examples/byzantine_avss-62c99f63efca3ed2.d: examples/byzantine_avss.rs Cargo.toml

/root/repo/target/debug/examples/libbyzantine_avss-62c99f63efca3ed2.rmeta: examples/byzantine_avss.rs Cargo.toml

examples/byzantine_avss.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
