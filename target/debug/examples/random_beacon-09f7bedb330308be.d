/root/repo/target/debug/examples/random_beacon-09f7bedb330308be.d: examples/random_beacon.rs Cargo.toml

/root/repo/target/debug/examples/librandom_beacon-09f7bedb330308be.rmeta: examples/random_beacon.rs Cargo.toml

examples/random_beacon.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
