/root/repo/target/debug/examples/leader_election-f543358befbb738e.d: examples/leader_election.rs Cargo.toml

/root/repo/target/debug/examples/libleader_election-f543358befbb738e.rmeta: examples/leader_election.rs Cargo.toml

examples/leader_election.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
