/root/repo/target/debug/examples/validated_agreement-2d239c028ad33416.d: examples/validated_agreement.rs

/root/repo/target/debug/examples/validated_agreement-2d239c028ad33416: examples/validated_agreement.rs

examples/validated_agreement.rs:
