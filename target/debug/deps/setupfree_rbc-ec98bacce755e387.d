/root/repo/target/debug/deps/setupfree_rbc-ec98bacce755e387.d: crates/rbc/src/lib.rs

/root/repo/target/debug/deps/libsetupfree_rbc-ec98bacce755e387.rlib: crates/rbc/src/lib.rs

/root/repo/target/debug/deps/libsetupfree_rbc-ec98bacce755e387.rmeta: crates/rbc/src/lib.rs

crates/rbc/src/lib.rs:
