/root/repo/target/debug/deps/setupfree_testkit-06445d1413e9be37.d: crates/testkit/src/lib.rs

/root/repo/target/debug/deps/setupfree_testkit-06445d1413e9be37: crates/testkit/src/lib.rs

crates/testkit/src/lib.rs:
