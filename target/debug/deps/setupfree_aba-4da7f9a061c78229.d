/root/repo/target/debug/deps/setupfree_aba-4da7f9a061c78229.d: crates/aba/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsetupfree_aba-4da7f9a061c78229.rmeta: crates/aba/src/lib.rs Cargo.toml

crates/aba/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
