/root/repo/target/debug/deps/setupfree_seeding-0c10b855509bd5dd.d: crates/seeding/src/lib.rs

/root/repo/target/debug/deps/setupfree_seeding-0c10b855509bd5dd: crates/seeding/src/lib.rs

crates/seeding/src/lib.rs:
