/root/repo/target/debug/deps/table1-55450814c98b9233.d: crates/bench/src/bin/table1.rs Cargo.toml

/root/repo/target/debug/deps/libtable1-55450814c98b9233.rmeta: crates/bench/src/bin/table1.rs Cargo.toml

crates/bench/src/bin/table1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
