/root/repo/target/debug/deps/setupfree_core-59e1b3db65a190a1.d: crates/core/src/lib.rs crates/core/src/coin.rs crates/core/src/election.rs crates/core/src/traits.rs crates/core/src/trusted.rs

/root/repo/target/debug/deps/setupfree_core-59e1b3db65a190a1: crates/core/src/lib.rs crates/core/src/coin.rs crates/core/src/election.rs crates/core/src/traits.rs crates/core/src/trusted.rs

crates/core/src/lib.rs:
crates/core/src/coin.rs:
crates/core/src/election.rs:
crates/core/src/traits.rs:
crates/core/src/trusted.rs:
