/root/repo/target/debug/deps/setupfree_wcs-266702ef095473ab.d: crates/wcs/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsetupfree_wcs-266702ef095473ab.rmeta: crates/wcs/src/lib.rs Cargo.toml

crates/wcs/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
