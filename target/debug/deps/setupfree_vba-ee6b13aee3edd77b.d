/root/repo/target/debug/deps/setupfree_vba-ee6b13aee3edd77b.d: crates/vba/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsetupfree_vba-ee6b13aee3edd77b.rmeta: crates/vba/src/lib.rs Cargo.toml

crates/vba/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
