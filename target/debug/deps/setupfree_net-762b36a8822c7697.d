/root/repo/target/debug/deps/setupfree_net-762b36a8822c7697.d: crates/net/src/lib.rs crates/net/src/faults.rs crates/net/src/metrics.rs crates/net/src/party.rs crates/net/src/protocol.rs crates/net/src/scheduler.rs crates/net/src/sim.rs

/root/repo/target/debug/deps/setupfree_net-762b36a8822c7697: crates/net/src/lib.rs crates/net/src/faults.rs crates/net/src/metrics.rs crates/net/src/party.rs crates/net/src/protocol.rs crates/net/src/scheduler.rs crates/net/src/sim.rs

crates/net/src/lib.rs:
crates/net/src/faults.rs:
crates/net/src/metrics.rs:
crates/net/src/party.rs:
crates/net/src/protocol.rs:
crates/net/src/scheduler.rs:
crates/net/src/sim.rs:
