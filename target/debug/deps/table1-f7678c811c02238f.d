/root/repo/target/debug/deps/table1-f7678c811c02238f.d: crates/bench/src/bin/table1.rs Cargo.toml

/root/repo/target/debug/deps/libtable1-f7678c811c02238f.rmeta: crates/bench/src/bin/table1.rs Cargo.toml

crates/bench/src/bin/table1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
