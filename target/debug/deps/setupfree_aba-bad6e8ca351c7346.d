/root/repo/target/debug/deps/setupfree_aba-bad6e8ca351c7346.d: crates/aba/src/lib.rs

/root/repo/target/debug/deps/libsetupfree_aba-bad6e8ca351c7346.rlib: crates/aba/src/lib.rs

/root/repo/target/debug/deps/libsetupfree_aba-bad6e8ca351c7346.rmeta: crates/aba/src/lib.rs

crates/aba/src/lib.rs:
