/root/repo/target/debug/deps/setupfree_rbc-61c48fff15e11c6f.d: crates/rbc/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsetupfree_rbc-61c48fff15e11c6f.rmeta: crates/rbc/src/lib.rs Cargo.toml

crates/rbc/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
