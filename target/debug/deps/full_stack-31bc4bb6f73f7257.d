/root/repo/target/debug/deps/full_stack-31bc4bb6f73f7257.d: tests/full_stack.rs

/root/repo/target/debug/deps/full_stack-31bc4bb6f73f7257: tests/full_stack.rs

tests/full_stack.rs:
