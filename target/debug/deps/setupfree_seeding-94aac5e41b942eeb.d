/root/repo/target/debug/deps/setupfree_seeding-94aac5e41b942eeb.d: crates/seeding/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsetupfree_seeding-94aac5e41b942eeb.rmeta: crates/seeding/src/lib.rs Cargo.toml

crates/seeding/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
