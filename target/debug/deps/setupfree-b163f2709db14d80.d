/root/repo/target/debug/deps/setupfree-b163f2709db14d80.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsetupfree-b163f2709db14d80.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
