/root/repo/target/debug/deps/fig_component_scaling-e0fd1138f6c25c8a.d: crates/bench/src/bin/fig_component_scaling.rs Cargo.toml

/root/repo/target/debug/deps/libfig_component_scaling-e0fd1138f6c25c8a.rmeta: crates/bench/src/bin/fig_component_scaling.rs Cargo.toml

crates/bench/src/bin/fig_component_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
