/root/repo/target/debug/deps/setupfree_avss-ec6fe629548df439.d: crates/avss/src/lib.rs crates/avss/src/harness.rs Cargo.toml

/root/repo/target/debug/deps/libsetupfree_avss-ec6fe629548df439.rmeta: crates/avss/src/lib.rs crates/avss/src/harness.rs Cargo.toml

crates/avss/src/lib.rs:
crates/avss/src/harness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
