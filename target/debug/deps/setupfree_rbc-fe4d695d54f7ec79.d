/root/repo/target/debug/deps/setupfree_rbc-fe4d695d54f7ec79.d: crates/rbc/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsetupfree_rbc-fe4d695d54f7ec79.rmeta: crates/rbc/src/lib.rs Cargo.toml

crates/rbc/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
