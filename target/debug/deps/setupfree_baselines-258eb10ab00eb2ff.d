/root/repo/target/debug/deps/setupfree_baselines-258eb10ab00eb2ff.d: crates/baselines/src/lib.rs

/root/repo/target/debug/deps/libsetupfree_baselines-258eb10ab00eb2ff.rlib: crates/baselines/src/lib.rs

/root/repo/target/debug/deps/libsetupfree_baselines-258eb10ab00eb2ff.rmeta: crates/baselines/src/lib.rs

crates/baselines/src/lib.rs:
