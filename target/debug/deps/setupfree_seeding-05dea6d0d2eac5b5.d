/root/repo/target/debug/deps/setupfree_seeding-05dea6d0d2eac5b5.d: crates/seeding/src/lib.rs

/root/repo/target/debug/deps/libsetupfree_seeding-05dea6d0d2eac5b5.rlib: crates/seeding/src/lib.rs

/root/repo/target/debug/deps/libsetupfree_seeding-05dea6d0d2eac5b5.rmeta: crates/seeding/src/lib.rs

crates/seeding/src/lib.rs:
