/root/repo/target/debug/deps/proptest-6092acb97db8c4a5.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-6092acb97db8c4a5: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
