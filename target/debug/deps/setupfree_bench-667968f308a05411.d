/root/repo/target/debug/deps/setupfree_bench-667968f308a05411.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsetupfree_bench-667968f308a05411.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
