/root/repo/target/debug/deps/fig_aba_rounds-f4154d3c6595cb75.d: crates/bench/src/bin/fig_aba_rounds.rs Cargo.toml

/root/repo/target/debug/deps/libfig_aba_rounds-f4154d3c6595cb75.rmeta: crates/bench/src/bin/fig_aba_rounds.rs Cargo.toml

crates/bench/src/bin/fig_aba_rounds.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
