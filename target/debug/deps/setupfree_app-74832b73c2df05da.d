/root/repo/target/debug/deps/setupfree_app-74832b73c2df05da.d: crates/app/src/lib.rs crates/app/src/adkg.rs crates/app/src/beacon.rs

/root/repo/target/debug/deps/setupfree_app-74832b73c2df05da: crates/app/src/lib.rs crates/app/src/adkg.rs crates/app/src/beacon.rs

crates/app/src/lib.rs:
crates/app/src/adkg.rs:
crates/app/src/beacon.rs:
