/root/repo/target/debug/deps/setupfree_net-6692a234fe66ecf6.d: crates/net/src/lib.rs crates/net/src/faults.rs crates/net/src/metrics.rs crates/net/src/party.rs crates/net/src/protocol.rs crates/net/src/scheduler.rs crates/net/src/sim.rs Cargo.toml

/root/repo/target/debug/deps/libsetupfree_net-6692a234fe66ecf6.rmeta: crates/net/src/lib.rs crates/net/src/faults.rs crates/net/src/metrics.rs crates/net/src/party.rs crates/net/src/protocol.rs crates/net/src/scheduler.rs crates/net/src/sim.rs Cargo.toml

crates/net/src/lib.rs:
crates/net/src/faults.rs:
crates/net/src/metrics.rs:
crates/net/src/party.rs:
crates/net/src/protocol.rs:
crates/net/src/scheduler.rs:
crates/net/src/sim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
