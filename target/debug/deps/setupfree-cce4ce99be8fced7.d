/root/repo/target/debug/deps/setupfree-cce4ce99be8fced7.d: src/lib.rs

/root/repo/target/debug/deps/libsetupfree-cce4ce99be8fced7.rlib: src/lib.rs

/root/repo/target/debug/deps/libsetupfree-cce4ce99be8fced7.rmeta: src/lib.rs

src/lib.rs:
