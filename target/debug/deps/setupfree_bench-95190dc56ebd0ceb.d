/root/repo/target/debug/deps/setupfree_bench-95190dc56ebd0ceb.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/setupfree_bench-95190dc56ebd0ceb: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
