/root/repo/target/debug/deps/setupfree_app-1684186d763faada.d: crates/app/src/lib.rs crates/app/src/adkg.rs crates/app/src/beacon.rs Cargo.toml

/root/repo/target/debug/deps/libsetupfree_app-1684186d763faada.rmeta: crates/app/src/lib.rs crates/app/src/adkg.rs crates/app/src/beacon.rs Cargo.toml

crates/app/src/lib.rs:
crates/app/src/adkg.rs:
crates/app/src/beacon.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
