/root/repo/target/debug/deps/rand-678e1ec8532f5f74.d: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/rand-678e1ec8532f5f74: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
