/root/repo/target/debug/deps/fig_coin_fairness-3e215d4aa232b5d1.d: crates/bench/src/bin/fig_coin_fairness.rs

/root/repo/target/debug/deps/fig_coin_fairness-3e215d4aa232b5d1: crates/bench/src/bin/fig_coin_fairness.rs

crates/bench/src/bin/fig_coin_fairness.rs:
