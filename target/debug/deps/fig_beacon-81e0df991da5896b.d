/root/repo/target/debug/deps/fig_beacon-81e0df991da5896b.d: crates/bench/src/bin/fig_beacon.rs Cargo.toml

/root/repo/target/debug/deps/libfig_beacon-81e0df991da5896b.rmeta: crates/bench/src/bin/fig_beacon.rs Cargo.toml

crates/bench/src/bin/fig_beacon.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
