/root/repo/target/debug/deps/fig_coin_fairness-8f58b169ffc5f784.d: crates/bench/src/bin/fig_coin_fairness.rs Cargo.toml

/root/repo/target/debug/deps/libfig_coin_fairness-8f58b169ffc5f784.rmeta: crates/bench/src/bin/fig_coin_fairness.rs Cargo.toml

crates/bench/src/bin/fig_coin_fairness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
