/root/repo/target/debug/deps/proptest-c947cc1941aec6ab.d: vendor/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-c947cc1941aec6ab.rmeta: vendor/proptest/src/lib.rs Cargo.toml

vendor/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
