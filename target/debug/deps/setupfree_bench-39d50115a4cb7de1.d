/root/repo/target/debug/deps/setupfree_bench-39d50115a4cb7de1.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libsetupfree_bench-39d50115a4cb7de1.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libsetupfree_bench-39d50115a4cb7de1.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
