/root/repo/target/debug/deps/proptest-cff23b700ec558aa.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-cff23b700ec558aa.rlib: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-cff23b700ec558aa.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
