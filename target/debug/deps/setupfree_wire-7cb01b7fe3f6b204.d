/root/repo/target/debug/deps/setupfree_wire-7cb01b7fe3f6b204.d: crates/wire/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsetupfree_wire-7cb01b7fe3f6b204.rmeta: crates/wire/src/lib.rs Cargo.toml

crates/wire/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
