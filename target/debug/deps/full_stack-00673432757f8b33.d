/root/repo/target/debug/deps/full_stack-00673432757f8b33.d: tests/full_stack.rs Cargo.toml

/root/repo/target/debug/deps/libfull_stack-00673432757f8b33.rmeta: tests/full_stack.rs Cargo.toml

tests/full_stack.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
