/root/repo/target/debug/deps/setupfree-ebaf9c475d487e7b.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsetupfree-ebaf9c475d487e7b.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
