/root/repo/target/debug/deps/protocols-28b2a880d393613c.d: crates/bench/benches/protocols.rs Cargo.toml

/root/repo/target/debug/deps/libprotocols-28b2a880d393613c.rmeta: crates/bench/benches/protocols.rs Cargo.toml

crates/bench/benches/protocols.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
