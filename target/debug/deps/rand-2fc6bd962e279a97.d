/root/repo/target/debug/deps/rand-2fc6bd962e279a97.d: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-2fc6bd962e279a97.rlib: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-2fc6bd962e279a97.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
