/root/repo/target/debug/deps/substrate_properties-346a46622cdc9c82.d: tests/substrate_properties.rs

/root/repo/target/debug/deps/substrate_properties-346a46622cdc9c82: tests/substrate_properties.rs

tests/substrate_properties.rs:
