/root/repo/target/debug/deps/setupfree_wire-f92b1acb21780e1c.d: crates/wire/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsetupfree_wire-f92b1acb21780e1c.rmeta: crates/wire/src/lib.rs Cargo.toml

crates/wire/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
