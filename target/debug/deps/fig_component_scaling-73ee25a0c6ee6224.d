/root/repo/target/debug/deps/fig_component_scaling-73ee25a0c6ee6224.d: crates/bench/src/bin/fig_component_scaling.rs Cargo.toml

/root/repo/target/debug/deps/libfig_component_scaling-73ee25a0c6ee6224.rmeta: crates/bench/src/bin/fig_component_scaling.rs Cargo.toml

crates/bench/src/bin/fig_component_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
