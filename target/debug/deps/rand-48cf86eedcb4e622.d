/root/repo/target/debug/deps/rand-48cf86eedcb4e622.d: vendor/rand/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand-48cf86eedcb4e622.rmeta: vendor/rand/src/lib.rs Cargo.toml

vendor/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
