/root/repo/target/debug/deps/setupfree_core-82aa0088229ae148.d: crates/core/src/lib.rs crates/core/src/coin.rs crates/core/src/election.rs crates/core/src/traits.rs crates/core/src/trusted.rs Cargo.toml

/root/repo/target/debug/deps/libsetupfree_core-82aa0088229ae148.rmeta: crates/core/src/lib.rs crates/core/src/coin.rs crates/core/src/election.rs crates/core/src/traits.rs crates/core/src/trusted.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/coin.rs:
crates/core/src/election.rs:
crates/core/src/traits.rs:
crates/core/src/trusted.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
