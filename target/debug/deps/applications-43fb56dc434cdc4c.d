/root/repo/target/debug/deps/applications-43fb56dc434cdc4c.d: crates/app/tests/applications.rs Cargo.toml

/root/repo/target/debug/deps/libapplications-43fb56dc434cdc4c.rmeta: crates/app/tests/applications.rs Cargo.toml

crates/app/tests/applications.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
