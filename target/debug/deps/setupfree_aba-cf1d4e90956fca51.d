/root/repo/target/debug/deps/setupfree_aba-cf1d4e90956fca51.d: crates/aba/src/lib.rs

/root/repo/target/debug/deps/setupfree_aba-cf1d4e90956fca51: crates/aba/src/lib.rs

crates/aba/src/lib.rs:
