/root/repo/target/debug/deps/fig_beacon-f3a99d34b794a1e1.d: crates/bench/src/bin/fig_beacon.rs

/root/repo/target/debug/deps/fig_beacon-f3a99d34b794a1e1: crates/bench/src/bin/fig_beacon.rs

crates/bench/src/bin/fig_beacon.rs:
