/root/repo/target/debug/deps/setupfree_vba-261f22841a98aaba.d: crates/vba/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsetupfree_vba-261f22841a98aaba.rmeta: crates/vba/src/lib.rs Cargo.toml

crates/vba/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
