/root/repo/target/debug/deps/setupfree_avss-7979bfb6af4f769f.d: crates/avss/src/lib.rs crates/avss/src/harness.rs

/root/repo/target/debug/deps/libsetupfree_avss-7979bfb6af4f769f.rlib: crates/avss/src/lib.rs crates/avss/src/harness.rs

/root/repo/target/debug/deps/libsetupfree_avss-7979bfb6af4f769f.rmeta: crates/avss/src/lib.rs crates/avss/src/harness.rs

crates/avss/src/lib.rs:
crates/avss/src/harness.rs:
