/root/repo/target/debug/deps/table1-5e5320bbfedd8815.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-5e5320bbfedd8815: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
