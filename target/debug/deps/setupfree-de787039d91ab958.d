/root/repo/target/debug/deps/setupfree-de787039d91ab958.d: src/lib.rs

/root/repo/target/debug/deps/setupfree-de787039d91ab958: src/lib.rs

src/lib.rs:
