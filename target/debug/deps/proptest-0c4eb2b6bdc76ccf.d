/root/repo/target/debug/deps/proptest-0c4eb2b6bdc76ccf.d: vendor/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-0c4eb2b6bdc76ccf.rmeta: vendor/proptest/src/lib.rs Cargo.toml

vendor/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
