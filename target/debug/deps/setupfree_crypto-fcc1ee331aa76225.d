/root/repo/target/debug/deps/setupfree_crypto-fcc1ee331aa76225.d: crates/crypto/src/lib.rs crates/crypto/src/group.rs crates/crypto/src/hash.rs crates/crypto/src/keyring.rs crates/crypto/src/modarith.rs crates/crypto/src/pairing.rs crates/crypto/src/params.rs crates/crypto/src/pedersen.rs crates/crypto/src/poly.rs crates/crypto/src/pvss.rs crates/crypto/src/scalar.rs crates/crypto/src/sig.rs crates/crypto/src/vrf.rs Cargo.toml

/root/repo/target/debug/deps/libsetupfree_crypto-fcc1ee331aa76225.rmeta: crates/crypto/src/lib.rs crates/crypto/src/group.rs crates/crypto/src/hash.rs crates/crypto/src/keyring.rs crates/crypto/src/modarith.rs crates/crypto/src/pairing.rs crates/crypto/src/params.rs crates/crypto/src/pedersen.rs crates/crypto/src/poly.rs crates/crypto/src/pvss.rs crates/crypto/src/scalar.rs crates/crypto/src/sig.rs crates/crypto/src/vrf.rs Cargo.toml

crates/crypto/src/lib.rs:
crates/crypto/src/group.rs:
crates/crypto/src/hash.rs:
crates/crypto/src/keyring.rs:
crates/crypto/src/modarith.rs:
crates/crypto/src/pairing.rs:
crates/crypto/src/params.rs:
crates/crypto/src/pedersen.rs:
crates/crypto/src/poly.rs:
crates/crypto/src/pvss.rs:
crates/crypto/src/scalar.rs:
crates/crypto/src/sig.rs:
crates/crypto/src/vrf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
