/root/repo/target/debug/deps/setupfree_wcs-8796969659ae3369.d: crates/wcs/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsetupfree_wcs-8796969659ae3369.rmeta: crates/wcs/src/lib.rs Cargo.toml

crates/wcs/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
