/root/repo/target/debug/deps/applications-a86366720d186435.d: crates/app/tests/applications.rs

/root/repo/target/debug/deps/applications-a86366720d186435: crates/app/tests/applications.rs

crates/app/tests/applications.rs:
