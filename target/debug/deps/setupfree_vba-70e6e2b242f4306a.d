/root/repo/target/debug/deps/setupfree_vba-70e6e2b242f4306a.d: crates/vba/src/lib.rs

/root/repo/target/debug/deps/libsetupfree_vba-70e6e2b242f4306a.rlib: crates/vba/src/lib.rs

/root/repo/target/debug/deps/libsetupfree_vba-70e6e2b242f4306a.rmeta: crates/vba/src/lib.rs

crates/vba/src/lib.rs:
