/root/repo/target/debug/deps/setupfree_baselines-7b284d6c8ec212a5.d: crates/baselines/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsetupfree_baselines-7b284d6c8ec212a5.rmeta: crates/baselines/src/lib.rs Cargo.toml

crates/baselines/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
