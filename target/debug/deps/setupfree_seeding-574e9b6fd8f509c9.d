/root/repo/target/debug/deps/setupfree_seeding-574e9b6fd8f509c9.d: crates/seeding/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsetupfree_seeding-574e9b6fd8f509c9.rmeta: crates/seeding/src/lib.rs Cargo.toml

crates/seeding/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
