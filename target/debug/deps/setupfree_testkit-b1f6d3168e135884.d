/root/repo/target/debug/deps/setupfree_testkit-b1f6d3168e135884.d: crates/testkit/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsetupfree_testkit-b1f6d3168e135884.rmeta: crates/testkit/src/lib.rs Cargo.toml

crates/testkit/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
