/root/repo/target/debug/deps/setupfree_testkit-c199e71c09013c92.d: crates/testkit/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsetupfree_testkit-c199e71c09013c92.rmeta: crates/testkit/src/lib.rs Cargo.toml

crates/testkit/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
