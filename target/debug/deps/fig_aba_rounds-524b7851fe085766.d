/root/repo/target/debug/deps/fig_aba_rounds-524b7851fe085766.d: crates/bench/src/bin/fig_aba_rounds.rs

/root/repo/target/debug/deps/fig_aba_rounds-524b7851fe085766: crates/bench/src/bin/fig_aba_rounds.rs

crates/bench/src/bin/fig_aba_rounds.rs:
