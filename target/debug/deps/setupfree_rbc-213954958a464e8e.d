/root/repo/target/debug/deps/setupfree_rbc-213954958a464e8e.d: crates/rbc/src/lib.rs

/root/repo/target/debug/deps/setupfree_rbc-213954958a464e8e: crates/rbc/src/lib.rs

crates/rbc/src/lib.rs:
