/root/repo/target/debug/deps/setupfree_wire-8e12092f9710a3e6.d: crates/wire/src/lib.rs

/root/repo/target/debug/deps/libsetupfree_wire-8e12092f9710a3e6.rlib: crates/wire/src/lib.rs

/root/repo/target/debug/deps/libsetupfree_wire-8e12092f9710a3e6.rmeta: crates/wire/src/lib.rs

crates/wire/src/lib.rs:
