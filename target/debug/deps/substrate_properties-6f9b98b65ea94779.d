/root/repo/target/debug/deps/substrate_properties-6f9b98b65ea94779.d: tests/substrate_properties.rs Cargo.toml

/root/repo/target/debug/deps/libsubstrate_properties-6f9b98b65ea94779.rmeta: tests/substrate_properties.rs Cargo.toml

tests/substrate_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
