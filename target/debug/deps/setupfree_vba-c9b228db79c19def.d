/root/repo/target/debug/deps/setupfree_vba-c9b228db79c19def.d: crates/vba/src/lib.rs

/root/repo/target/debug/deps/setupfree_vba-c9b228db79c19def: crates/vba/src/lib.rs

crates/vba/src/lib.rs:
