/root/repo/target/debug/deps/setupfree_avss-39cbd5efa6ea655b.d: crates/avss/src/lib.rs crates/avss/src/harness.rs Cargo.toml

/root/repo/target/debug/deps/libsetupfree_avss-39cbd5efa6ea655b.rmeta: crates/avss/src/lib.rs crates/avss/src/harness.rs Cargo.toml

crates/avss/src/lib.rs:
crates/avss/src/harness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
