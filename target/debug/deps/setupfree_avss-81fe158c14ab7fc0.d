/root/repo/target/debug/deps/setupfree_avss-81fe158c14ab7fc0.d: crates/avss/src/lib.rs crates/avss/src/harness.rs

/root/repo/target/debug/deps/setupfree_avss-81fe158c14ab7fc0: crates/avss/src/lib.rs crates/avss/src/harness.rs

crates/avss/src/lib.rs:
crates/avss/src/harness.rs:
