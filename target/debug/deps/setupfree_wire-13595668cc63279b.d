/root/repo/target/debug/deps/setupfree_wire-13595668cc63279b.d: crates/wire/src/lib.rs

/root/repo/target/debug/deps/setupfree_wire-13595668cc63279b: crates/wire/src/lib.rs

crates/wire/src/lib.rs:
