/root/repo/target/debug/deps/setupfree_testkit-36678fba0ffef078.d: crates/testkit/src/lib.rs

/root/repo/target/debug/deps/libsetupfree_testkit-36678fba0ffef078.rlib: crates/testkit/src/lib.rs

/root/repo/target/debug/deps/libsetupfree_testkit-36678fba0ffef078.rmeta: crates/testkit/src/lib.rs

crates/testkit/src/lib.rs:
