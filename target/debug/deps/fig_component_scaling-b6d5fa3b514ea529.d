/root/repo/target/debug/deps/fig_component_scaling-b6d5fa3b514ea529.d: crates/bench/src/bin/fig_component_scaling.rs

/root/repo/target/debug/deps/fig_component_scaling-b6d5fa3b514ea529: crates/bench/src/bin/fig_component_scaling.rs

crates/bench/src/bin/fig_component_scaling.rs:
