/root/repo/target/debug/deps/setupfree_wcs-4f51d5b25422dde9.d: crates/wcs/src/lib.rs

/root/repo/target/debug/deps/libsetupfree_wcs-4f51d5b25422dde9.rlib: crates/wcs/src/lib.rs

/root/repo/target/debug/deps/libsetupfree_wcs-4f51d5b25422dde9.rmeta: crates/wcs/src/lib.rs

crates/wcs/src/lib.rs:
