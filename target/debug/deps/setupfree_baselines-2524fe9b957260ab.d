/root/repo/target/debug/deps/setupfree_baselines-2524fe9b957260ab.d: crates/baselines/src/lib.rs

/root/repo/target/debug/deps/setupfree_baselines-2524fe9b957260ab: crates/baselines/src/lib.rs

crates/baselines/src/lib.rs:
