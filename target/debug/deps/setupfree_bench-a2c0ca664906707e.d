/root/repo/target/debug/deps/setupfree_bench-a2c0ca664906707e.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsetupfree_bench-a2c0ca664906707e.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
