/root/repo/target/debug/deps/setupfree_baselines-afd01dc0e6aa6ffb.d: crates/baselines/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsetupfree_baselines-afd01dc0e6aa6ffb.rmeta: crates/baselines/src/lib.rs Cargo.toml

crates/baselines/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
