/root/repo/target/debug/deps/setupfree_wcs-3d38a1f3ae41992b.d: crates/wcs/src/lib.rs

/root/repo/target/debug/deps/setupfree_wcs-3d38a1f3ae41992b: crates/wcs/src/lib.rs

crates/wcs/src/lib.rs:
