/root/repo/target/debug/deps/setupfree_app-86daaa0e8690acad.d: crates/app/src/lib.rs crates/app/src/adkg.rs crates/app/src/beacon.rs

/root/repo/target/debug/deps/libsetupfree_app-86daaa0e8690acad.rlib: crates/app/src/lib.rs crates/app/src/adkg.rs crates/app/src/beacon.rs

/root/repo/target/debug/deps/libsetupfree_app-86daaa0e8690acad.rmeta: crates/app/src/lib.rs crates/app/src/adkg.rs crates/app/src/beacon.rs

crates/app/src/lib.rs:
crates/app/src/adkg.rs:
crates/app/src/beacon.rs:
