/root/repo/target/debug/deps/crypto-5a15c2db1927733b.d: crates/bench/benches/crypto.rs Cargo.toml

/root/repo/target/debug/deps/libcrypto-5a15c2db1927733b.rmeta: crates/bench/benches/crypto.rs Cargo.toml

crates/bench/benches/crypto.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
