/root/repo/target/debug/deps/setupfree_aba-65e46124c2a4e71f.d: crates/aba/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsetupfree_aba-65e46124c2a4e71f.rmeta: crates/aba/src/lib.rs Cargo.toml

crates/aba/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
