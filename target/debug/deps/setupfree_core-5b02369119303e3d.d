/root/repo/target/debug/deps/setupfree_core-5b02369119303e3d.d: crates/core/src/lib.rs crates/core/src/coin.rs crates/core/src/election.rs crates/core/src/traits.rs crates/core/src/trusted.rs

/root/repo/target/debug/deps/libsetupfree_core-5b02369119303e3d.rlib: crates/core/src/lib.rs crates/core/src/coin.rs crates/core/src/election.rs crates/core/src/traits.rs crates/core/src/trusted.rs

/root/repo/target/debug/deps/libsetupfree_core-5b02369119303e3d.rmeta: crates/core/src/lib.rs crates/core/src/coin.rs crates/core/src/election.rs crates/core/src/traits.rs crates/core/src/trusted.rs

crates/core/src/lib.rs:
crates/core/src/coin.rs:
crates/core/src/election.rs:
crates/core/src/traits.rs:
crates/core/src/trusted.rs:
