/root/repo/target/debug/deps/fig_aba_rounds-6c925465b652c9ae.d: crates/bench/src/bin/fig_aba_rounds.rs Cargo.toml

/root/repo/target/debug/deps/libfig_aba_rounds-6c925465b652c9ae.rmeta: crates/bench/src/bin/fig_aba_rounds.rs Cargo.toml

crates/bench/src/bin/fig_aba_rounds.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
