/root/repo/target/debug/deps/fig_coin_fairness-91247f6abdb5517a.d: crates/bench/src/bin/fig_coin_fairness.rs Cargo.toml

/root/repo/target/debug/deps/libfig_coin_fairness-91247f6abdb5517a.rmeta: crates/bench/src/bin/fig_coin_fairness.rs Cargo.toml

crates/bench/src/bin/fig_coin_fairness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
