/root/repo/target/debug/deps/fig_beacon-10e0b009d0311681.d: crates/bench/src/bin/fig_beacon.rs Cargo.toml

/root/repo/target/debug/deps/libfig_beacon-10e0b009d0311681.rmeta: crates/bench/src/bin/fig_beacon.rs Cargo.toml

crates/bench/src/bin/fig_beacon.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
